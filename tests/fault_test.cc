// Fault-tolerance tests (Sec. 1, 4): evacuation of a dying machine, crash and
// warm reboot of a forwarding-address holder, and stable-storage recovery.

#include <gtest/gtest.h>

#include <string_view>

#include "src/base/stats.h"
#include "src/check/invariants.h"
#include "src/fault/crash.h"
#include "src/fault/recovery.h"
#include "src/obs/trace.h"
#include "tests/sys_test_util.h"

namespace demos {
namespace {

int TraceCount(const Kernel& kernel, const char* name) {
  int count = 0;
  for (const TraceEvent& ev : kernel.tracer().events()) {
    if (std::string_view(ev.name) == name) {
      ++count;
    }
  }
  return count;
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterSystemPrograms();
    RegisterWorkloadPrograms();
    GlobalCapture().clear();
  }
};

TEST_F(FaultTest, CrashedMachineDropsTraffic) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto counter = cluster.kernel(1).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  CrashController crash(&cluster);
  crash.Crash(1);
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 0u);  // never delivered
}

TEST_F(FaultTest, ReviveResumesProcessing) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto counter = cluster.kernel(1).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  CrashController crash(&cluster);
  crash.Crash(1);
  cluster.RunFor(10'000);
  crash.Revive(1);
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

TEST_F(FaultTest, ReliableLayerDeliversAcrossCrashWindow) {
  // With the published-communications substitute underneath, a message sent
  // while the receiver is down is retransmitted until the reboot -- the
  // "any message sent will eventually be delivered" guarantee.
  ClusterConfig config;
  config.machines = 2;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 5'000;
  Cluster cluster(config);
  auto counter = cluster.kernel(1).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  CrashController crash(&cluster);
  crash.Crash(1);
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.RunFor(20'000);  // retransmissions bouncing off the dead machine
  crash.Revive(1);
  cluster.RunFor(100'000);

  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

TEST_F(FaultTest, ForwardingAddressSurvivesCrashAndReboot) {
  // Sec. 4: "Since forwarding addresses are (degenerate) processes, the same
  // recovery mechanism that works for processes works for forwarding
  // addresses."
  ClusterConfig config;
  config.machines = 3;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 5'000;
  Cluster cluster(config);
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);

  CrashController crash(&cluster);
  crash.Crash(0);  // the forwarding-address holder dies
  // A message addressed to the old location keeps being retransmitted.
  cluster.kernel(2).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunFor(30'000);
  crash.Revive(0);  // warm reboot: the 8-byte forwarding address is intact
  cluster.RunFor(200'000);

  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

TEST_F(FaultTest, RatsLeaveSinkingShip) {
  // Degrade a machine, evacuate it through the process manager, then let it
  // die; all evacuated processes keep running elsewhere.
  Cluster cluster(ClusterConfig{.machines = 3});
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 1);

  // Three workers on the doomed machine 2, created through the PM so it
  // knows about them.
  std::vector<ProcessId> workers;
  for (int i = 0; i < 3; ++i) {
    ByteWriter w;
    w.U64(static_cast<std::uint64_t>(i));
    w.Str("counter");
    w.U16(2);
    w.U32(1024);
    w.U32(512);
    w.U32(256);
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                     {Link{*sink, kLinkReply, 0, 0}});
  }
  ASSERT_TRUE(
      testutil::RunUntil(cluster, [&] { return testutil::CapturedFor(1).size() >= 3; }));
  for (const auto& captured : testutil::CapturedFor(1)) {
    ByteReader r(captured.payload);
    (void)r.U64();
    (void)r.U8();
    workers.push_back(r.Address().pid);
  }

  CrashController crash(&cluster);
  crash.DegradeThenCrash(2, /*grace_us=*/400'000);
  ByteWriter w;
  w.U16(2);
  cluster.kernel(0).SendFromKernel(layout.process_manager, kPmEvacuate, w.Take());

  ASSERT_TRUE(testutil::RunUntil(
      cluster,
      [&] {
        for (const ProcessId& pid : workers) {
          const MachineId at = cluster.HostOf(pid);
          if (at == 2 || at == kNoMachine) {
            return false;
          }
        }
        return true;
      },
      350'000));

  cluster.RunFor(600'000);  // well past the grace period: machine 2 is dead
  EXPECT_TRUE(crash.IsCrashed(2));
  // Everyone still responds to work.
  for (const ProcessId& pid : workers) {
    const MachineId at = cluster.HostOf(pid);
    ASSERT_NE(at, 2);
    cluster.kernel(0).SendFromKernel(ProcessAddress{at, pid}, kIncrement, {});
  }
  cluster.RunFor(50'000);
  for (const ProcessId& pid : workers) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    ASSERT_NE(record, nullptr);
    ByteReader r(record->memory.ReadData(0, 8));
    EXPECT_EQ(r.U64(), 1u);
  }
}

TEST_F(FaultTest, CheckpointRecoversProcessFromCrashedMachine) {
  // Sec. 1: migrate a process "from a processor that has crashed to a
  // working one" using state saved in stable storage.
  Cluster cluster(ClusterConfig{.machines = 3});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  for (int i = 0; i < 4; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  StableStore store;
  ASSERT_TRUE(store.Checkpoint(cluster, counter->pid).ok());

  CrashController crash(&cluster);
  crash.Crash(0);
  ASSERT_TRUE(store.RecoverProcess(cluster, counter->pid, /*destination=*/2).ok());
  cluster.RunUntilIdle();

  ProcessRecord* recovered = cluster.kernel(2).FindProcess(counter->pid);
  ASSERT_NE(recovered, nullptr);
  ByteReader r(recovered->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 4u);  // counted work survived the crash

  // And it continues to accept messages at the new location.
  cluster.kernel(1).SendFromKernel(ProcessAddress{2, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r2(recovered->memory.ReadData(0, 8));
  EXPECT_EQ(r2.U64(), 5u);
}

TEST_F(FaultTest, RebootedHomeForwardsToRecoveredProcess) {
  Cluster cluster(ClusterConfig{.machines = 3});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  StableStore store;
  ASSERT_TRUE(store.Checkpoint(cluster, counter->pid).ok());
  CrashController crash(&cluster);
  crash.Crash(0);
  ASSERT_TRUE(store.RecoverProcess(cluster, counter->pid, 2).ok());
  cluster.RunUntilIdle();

  crash.Revive(0);
  // The revived home holds a forwarding address; old-address traffic chases
  // the recovered process.  (The recovered copy replaced the stale one.)
  cluster.kernel(1).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ProcessRecord* recovered = cluster.kernel(2).FindProcess(counter->pid);
  ASSERT_NE(recovered, nullptr);
  ByteReader r(recovered->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

// Shared setup for the crash-during-MOVE_DATA tests: a reliable cluster with
// tiny data packets (so one migration takes many MOVE_DATA round trips, with
// a wide window of virtual time to crash into) and a counter carrying a large
// data segment whose contents must survive byte-exact.
ClusterConfig MidTransferConfig() {
  ClusterConfig config;
  config.machines = 2;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 4'000;
  config.reliable.max_retries = 0;  // never give up: delivery is guaranteed
  config.kernel.data_packet_bytes = 256;
  config.kernel.data_window_packets = 2;
  config.trace_enabled = true;  // the checker keys messages by trace id
  return config;
}

TEST_F(FaultTest, SourceCrashMidTransferStillDeliversExactlyOnce) {
  // Crash the *source* while MOVE_DATA packets are in flight.  The paper's
  // guarantee -- any message sent will eventually be delivered -- extends to
  // the migration protocol itself: after the warm reboot the transfer must
  // resume, and the cluster must end with exactly one live, intact copy.
  Cluster cluster(MidTransferConfig());
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 32768, 2048);
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunFor(2'000);  // 32 KiB in 256-byte packets: transfer barely begun
  CrashController crash(&cluster);
  crash.Crash(0);
  cluster.RunFor(30'000);  // destination retransmits into the dead machine
  crash.Revive(0);
  cluster.RunUntilIdle();

  // Exactly one live copy, wherever it ended up, with its count intact.
  ProcessRecord* record = cluster.FindProcessAnywhere(counter->pid);
  ASSERT_NE(record, nullptr);
  const MachineId host = cluster.HostOf(counter->pid);
  ASSERT_NE(host, kNoMachine);
  ByteReader r(record->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 3u);

  // Still reachable through the original address.
  cluster.kernel(1).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r2(cluster.FindProcessAnywhere(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r2.U64(), 4u);

  cluster.SetObserver(nullptr);
  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
}

TEST_F(FaultTest, DestinationCrashBeforeRestartStillDeliversExactlyOnce) {
  // Crash the *destination* while it holds a partial image, before the
  // restart handshake completes, with stale-address traffic arriving during
  // the outage.  After the reboot no copy may be lost and none duplicated.
  Cluster cluster(MidTransferConfig());
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 32768, 2048);
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 2; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunFor(8'000);  // deep into the section transfer, restart not acked
  CrashController crash(&cluster);
  crash.Crash(1);
  // Traffic addressed at the original location keeps flowing into the crash
  // window; the reliable layer must hold it until somebody can consume it.
  cluster.kernel(0).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunFor(30'000);
  crash.Revive(1);
  cluster.RunUntilIdle();

  ProcessRecord* record = cluster.FindProcessAnywhere(counter->pid);
  ASSERT_NE(record, nullptr);
  ASSERT_NE(cluster.HostOf(counter->pid), kNoMachine);
  ByteReader r(record->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 3u);  // 2 before + 1 during the outage, no duplicates

  cluster.SetObserver(nullptr);
  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
}

// MidTransferConfig plus the watchdog machinery this PR adds: finite
// retransmission (so the reliable layer reaches a give-up verdict against a
// corpse) and all three per-phase migration deadlines armed.
ClusterConfig WatchdogConfig() {
  ClusterConfig config = MidTransferConfig();
  config.reliable.max_retries = 6;
  config.kernel.migration_deadlines.offer_accept_us = 30'000;
  config.kernel.migration_deadlines.transfer_progress_us = 30'000;
  config.kernel.migration_deadlines.handoff_us = 30'000;
  return config;
}

TEST_F(FaultTest, DestinationDiesPermanentlyMidTransferSourceRollsBack) {
  // The destination dies mid-MOVE_DATA and never comes back.  Without a
  // reboot to resume the transfer, the source's progress watchdog must fire:
  // rollback unfreezes the process in place, pending messages drain exactly
  // once, the peer lands on the suspect list, and re-offering toward the
  // corpse is refused without freezing anything.
  Cluster cluster(WatchdogConfig());
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 32768, 2048);
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunFor(2'000);  // mid-transfer
  CrashController crash(&cluster);
  crash.Crash(1);  // permanent: no Revive ever follows
  // Work keeps arriving for the frozen process during the outage; rollback
  // must deliver it to the resumed local copy, exactly once.
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.RunUntilIdle();

  // The process resumed locally with every message applied exactly once.
  ProcessRecord* record = cluster.kernel(0).FindProcess(counter->pid);
  ASSERT_NE(record, nullptr);
  EXPECT_NE(record->state, ExecState::kInMigration);
  ByteReader r(record->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 5u);
  EXPECT_FALSE(cluster.kernel(0).HasMigrationInProgress());

  // The requester was told why.
  ASSERT_EQ(cluster.kernel(0).migrate_done_log().size(), 1u);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[0].status, StatusCode::kPeerTimeout);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[0].final_home, 0);
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kMigrationsTimedOut), 1);
  EXPECT_GE(TraceCount(cluster.kernel(0), trace::kWatchdogTimeout), 1);
  EXPECT_GE(TraceCount(cluster.kernel(0), trace::kCancelSent), 1);

  // The reliable channel gave up on the corpse and fed the suspect list.
  EXPECT_GE(cluster.reliable()->stats().Get("rel_give_ups_m0_to_m1"), 1);
  EXPECT_TRUE(cluster.kernel(0).IsPeerSuspect(1));

  // Policy refuses to re-offer toward a suspect peer -- no freeze, just a
  // kUnavailable verdict back to the requester.
  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kMigrationsRefusedSuspect), 1);
  ASSERT_EQ(cluster.kernel(0).migrate_done_log().size(), 2u);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[1].status, StatusCode::kUnavailable);
  EXPECT_EQ(cluster.HostOf(counter->pid), 0);

  cluster.SetObserver(nullptr);
  checker.MarkMachineDead(1);
  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
}

TEST_F(FaultTest, SourceDiesPermanentlyMidTransferDestinationReaps) {
  // The source dies before the image is fully assembled.  The destination's
  // progress watchdog must garbage-collect the partial image (never restart
  // it -- the authoritative copy died with the source) and suspect the peer.
  Cluster cluster(WatchdogConfig());
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 32768, 2048);
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunFor(3'000);  // sections still streaming, image not assembled
  CrashController crash(&cluster);
  crash.Crash(0);  // permanent
  cluster.RunUntilIdle();

  // No half-built ghost left behind, and no restarted duplicate.
  EXPECT_EQ(cluster.kernel(1).FindProcess(counter->pid), nullptr);
  EXPECT_FALSE(cluster.kernel(1).HasMigrationInProgress());
  EXPECT_EQ(cluster.kernel(1).stats().Get(stat::kMigrationsReaped), 1);
  EXPECT_EQ(cluster.kernel(1).stats().Get(stat::kMigrationsAdopted), 0);
  EXPECT_EQ(TraceCount(cluster.kernel(1), trace::kDestReaped), 1);
  EXPECT_TRUE(cluster.kernel(1).IsPeerSuspect(0));

  cluster.SetObserver(nullptr);
  checker.MarkMachineDead(0);  // the process legitimately died with machine 0
  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
}

TEST_F(FaultTest, SourceDiesPermanentlyAfterTransferDestinationAdopts) {
  // 2PC refinement: once the destination holds the complete image (it sent
  // kMigrateDataDone), a silent source means only the cleanup handshake was
  // lost.  Discarding now would lose the sole surviving copy, so the handoff
  // watchdog must ADOPT: restart the process from the assembled image.
  Cluster cluster(WatchdogConfig());
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 32768, 2048);
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  // Run in fine steps until the destination announces transfer-complete,
  // then kill the source before the cleanup handshake can land.
  ASSERT_TRUE(testutil::RunUntil(
      cluster,
      [&] { return TraceCount(cluster.kernel(1), trace::kTransferDoneSent) > 0; },
      2'000'000, /*step_us=*/50));
  CrashController crash(&cluster);
  crash.Crash(0);  // permanent
  cluster.RunUntilIdle();

  // The destination restarted the process itself; state arrived intact.
  // (The corpse still holds its pre-crash record -- retained stable storage
  // on a machine that will never run again -- so ask the live kernel.)
  EXPECT_EQ(cluster.kernel(1).stats().Get(stat::kMigrationsAdopted), 1);
  EXPECT_EQ(cluster.kernel(1).stats().Get(stat::kMigrationsReaped), 0);
  EXPECT_EQ(TraceCount(cluster.kernel(1), trace::kDestAdopted), 1);
  ProcessRecord* record = cluster.kernel(1).FindProcess(counter->pid);
  ASSERT_NE(record, nullptr);
  ByteReader r(record->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 3u);

  // And it keeps doing work at the new home.
  cluster.kernel(1).SendFromKernel(ProcessAddress{1, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r2(record->memory.ReadData(0, 8));
  EXPECT_EQ(r2.U64(), 4u);

  cluster.SetObserver(nullptr);
  checker.MarkMachineDead(0);
  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
}

TEST_F(FaultTest, DuplicateRejectDoesNotDoubleAbort) {
  // A destination's refusal can be retransmitted and arrive again after the
  // source already rolled the attempt back and begun a NEW attempt elsewhere.
  // The attempt epoch must make the duplicate a stale no-op -- acting on it
  // would abort the newer, healthy migration.
  ClusterConfig config;
  config.machines = 3;
  config.trace_enabled = true;
  Cluster cluster(config);
  cluster.kernel(1).SetAcceptMigration([](const MigrateOffer&) { return false; });

  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  // Attempt 1: machine 1 refuses; the source rolls back.
  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunUntilIdle();
  ASSERT_EQ(cluster.kernel(0).migrate_done_log().size(), 1u);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[0].status, StatusCode::kRefused);
  ASSERT_EQ(cluster.HostOf(counter->pid), 0);

  // Attempt 2 toward machine 2; while it is in flight, replay attempt 1's
  // negative reply (a duplicate delivery from the network's point of view).
  (void)cluster.kernel(0).StartMigration(counter->pid, 2,
                                         cluster.kernel(0).kernel_address());
  cluster.RunFor(300);
  ByteWriter stale;
  stale.Pid(counter->pid);
  stale.U8(static_cast<std::uint8_t>(StatusCode::kRefused));
  stale.U32(1);  // attempt 1's epoch, long since rolled back
  cluster.kernel(1).SendFromKernel(KernelAddress(0), MsgType::kMigrateReject, stale.Take());
  cluster.RunUntilIdle();

  // The duplicate was dropped as stale and attempt 2 completed normally.
  EXPECT_GE(cluster.kernel(0).stats().Get(stat::kStaleMigrationMsgs), 1);
  EXPECT_EQ(cluster.HostOf(counter->pid), 2);
  ASSERT_EQ(cluster.kernel(0).migrate_done_log().size(), 2u);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[1].status, StatusCode::kOk);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[1].final_home, 2);

  cluster.kernel(0).SendFromKernel(ProcessAddress{2, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r(cluster.FindProcessAnywhere(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 4u);
}

TEST_F(FaultTest, EvacuationWinsGraceRace) {
  // DegradeThenCrash with a generous grace window: the evacuation finishes
  // first, and the armed watchdogs never misfire on healthy migrations.
  ClusterConfig config;
  config.machines = 3;
  config.kernel.migration_deadlines.offer_accept_us = 40'000;
  config.kernel.migration_deadlines.transfer_progress_us = 40'000;
  config.kernel.migration_deadlines.handoff_us = 40'000;
  Cluster cluster(config);
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 1);

  std::vector<ProcessId> workers;
  for (int i = 0; i < 3; ++i) {
    ByteWriter w;
    w.U64(static_cast<std::uint64_t>(i));
    w.Str("counter");
    w.U16(2);
    w.U32(1024);
    w.U32(512);
    w.U32(256);
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                     {Link{*sink, kLinkReply, 0, 0}});
  }
  ASSERT_TRUE(
      testutil::RunUntil(cluster, [&] { return testutil::CapturedFor(1).size() >= 3; }));
  for (const auto& captured : testutil::CapturedFor(1)) {
    ByteReader r(captured.payload);
    (void)r.U64();
    (void)r.U8();
    workers.push_back(r.Address().pid);
  }

  CrashController crash(&cluster);
  crash.DegradeThenCrash(2, /*grace_us=*/400'000);
  ByteWriter w;
  w.U16(2);
  cluster.kernel(0).SendFromKernel(layout.process_manager, kPmEvacuate, w.Take());

  ASSERT_TRUE(testutil::RunUntil(
      cluster,
      [&] {
        for (const ProcessId& pid : workers) {
          const MachineId at = cluster.HostOf(pid);
          if (at == 2 || at == kNoMachine) {
            return false;
          }
        }
        return true;
      },
      350'000));
  cluster.RunFor(600'000);
  EXPECT_TRUE(crash.IsCrashed(2));

  // Every worker escaped and still responds.
  for (const ProcessId& pid : workers) {
    const MachineId at = cluster.HostOf(pid);
    ASSERT_NE(at, 2);
    ASSERT_NE(at, kNoMachine);
    cluster.kernel(0).SendFromKernel(ProcessAddress{at, pid}, kIncrement, {});
  }
  cluster.RunFor(50'000);
  for (const ProcessId& pid : workers) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    ASSERT_NE(record, nullptr);
    ByteReader r(record->memory.ReadData(0, 8));
    EXPECT_EQ(r.U64(), 1u);
  }
  // The deadlines were armed the whole time yet no failure path fired: the
  // watchdogs measure progress, not elapsed time.
  for (int m = 0; m < 2; ++m) {
    EXPECT_EQ(cluster.kernel(m).stats().Get(stat::kMigrationsTimedOut), 0) << "m" << m;
    EXPECT_EQ(cluster.kernel(m).stats().Get(stat::kMigrationsReaped), 0) << "m" << m;
    EXPECT_EQ(cluster.kernel(m).stats().Get(stat::kMigrationsAdopted), 0) << "m" << m;
  }
}

TEST_F(FaultTest, EvacuationLosesGraceRaceLeavesNoFrozenState) {
  // DegradeThenCrash with a grace window too small for the evacuation of
  // large workers: the machine dies mid-exodus.  I8 is the property under
  // test -- after every deadline elapses, no surviving kernel may hold
  // migration state or a frozen process.  Workers either escaped whole or
  // died with the ship; none are stuck in between.
  ClusterConfig config;
  config.machines = 3;
  config.kernel.migration_deadlines.offer_accept_us = 40'000;
  config.kernel.migration_deadlines.transfer_progress_us = 40'000;
  config.kernel.migration_deadlines.handoff_us = 40'000;
  Cluster cluster(config);
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 1);

  // Big data segments so each transfer takes tens of milliseconds -- the
  // 30 ms grace window cannot cover all three.
  std::vector<ProcessId> workers;
  for (int i = 0; i < 3; ++i) {
    ByteWriter w;
    w.U64(static_cast<std::uint64_t>(i));
    w.Str("counter");
    w.U16(2);
    w.U32(1024);
    w.U32(262144);
    w.U32(256);
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                     {Link{*sink, kLinkReply, 0, 0}});
  }
  ASSERT_TRUE(
      testutil::RunUntil(cluster, [&] { return testutil::CapturedFor(1).size() >= 3; }));
  for (const auto& captured : testutil::CapturedFor(1)) {
    ByteReader r(captured.payload);
    (void)r.U64();
    (void)r.U8();
    workers.push_back(r.Address().pid);
  }

  CrashController crash(&cluster);
  crash.DegradeThenCrash(2, /*grace_us=*/30'000);
  ByteWriter w;
  w.U16(2);
  cluster.kernel(0).SendFromKernel(layout.process_manager, kPmEvacuate, w.Take());

  ASSERT_TRUE(
      testutil::RunUntil(cluster, [&] { return crash.IsCrashed(2); }, 100'000));
  // Let every per-phase deadline on the survivors elapse and resolve.
  cluster.RunFor(300'000);

  // I8 on the survivors: all failure paths fired, nothing is frozen.
  for (int m = 0; m < 2; ++m) {
    EXPECT_FALSE(cluster.kernel(m).HasMigrationInProgress()) << "m" << m;
    for (const auto& [pid, entry] : cluster.kernel(m).process_table().entries()) {
      if (!entry.IsForwarding()) {
        EXPECT_NE(entry.process->state, ExecState::kInMigration)
            << pid.ToString() << " frozen on m" << m;
      }
    }
  }

  // Dichotomy: a worker either escaped to a live machine (and still counts)
  // or its only copy is on the corpse.  Nothing may be duplicated or stuck.
  int escaped = 0;
  for (const ProcessId& pid : workers) {
    const MachineId at = cluster.HostOf(pid);
    if (at == 0 || at == 1) {
      ++escaped;
      cluster.kernel(0).SendFromKernel(ProcessAddress{at, pid}, kIncrement, {});
    } else {
      EXPECT_TRUE(at == 2 || at == kNoMachine) << pid.ToString();
    }
  }
  cluster.RunFor(50'000);
  for (const ProcessId& pid : workers) {
    const MachineId at = cluster.HostOf(pid);
    if (at == 0 || at == 1) {
      ProcessRecord* record = cluster.kernel(at).FindProcess(pid);
      ASSERT_NE(record, nullptr);
      ByteReader r(record->memory.ReadData(0, 8));
      EXPECT_EQ(r.U64(), 1u) << pid.ToString();
    }
  }
  (void)escaped;  // any split is legal; the invariant is no-one-in-between
}

TEST_F(FaultTest, CheckpointOfMissingProcessFails) {
  Cluster cluster(ClusterConfig{.machines = 2});
  StableStore store;
  EXPECT_FALSE(store.Checkpoint(cluster, ProcessId{0, 999}).ok());
  EXPECT_FALSE(store.RecoverProcess(cluster, ProcessId{0, 999}, 1).ok());
}

}  // namespace
}  // namespace demos
