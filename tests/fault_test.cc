// Fault-tolerance tests (Sec. 1, 4): evacuation of a dying machine, crash and
// warm reboot of a forwarding-address holder, and stable-storage recovery.

#include <gtest/gtest.h>

#include "src/check/invariants.h"
#include "src/fault/crash.h"
#include "src/fault/recovery.h"
#include "tests/sys_test_util.h"

namespace demos {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterSystemPrograms();
    RegisterWorkloadPrograms();
    GlobalCapture().clear();
  }
};

TEST_F(FaultTest, CrashedMachineDropsTraffic) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto counter = cluster.kernel(1).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  CrashController crash(&cluster);
  crash.Crash(1);
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 0u);  // never delivered
}

TEST_F(FaultTest, ReviveResumesProcessing) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto counter = cluster.kernel(1).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  CrashController crash(&cluster);
  crash.Crash(1);
  cluster.RunFor(10'000);
  crash.Revive(1);
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

TEST_F(FaultTest, ReliableLayerDeliversAcrossCrashWindow) {
  // With the published-communications substitute underneath, a message sent
  // while the receiver is down is retransmitted until the reboot -- the
  // "any message sent will eventually be delivered" guarantee.
  ClusterConfig config;
  config.machines = 2;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 5'000;
  Cluster cluster(config);
  auto counter = cluster.kernel(1).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  CrashController crash(&cluster);
  crash.Crash(1);
  cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  cluster.RunFor(20'000);  // retransmissions bouncing off the dead machine
  crash.Revive(1);
  cluster.RunFor(100'000);

  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

TEST_F(FaultTest, ForwardingAddressSurvivesCrashAndReboot) {
  // Sec. 4: "Since forwarding addresses are (degenerate) processes, the same
  // recovery mechanism that works for processes works for forwarding
  // addresses."
  ClusterConfig config;
  config.machines = 3;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 5'000;
  Cluster cluster(config);
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);

  CrashController crash(&cluster);
  crash.Crash(0);  // the forwarding-address holder dies
  // A message addressed to the old location keeps being retransmitted.
  cluster.kernel(2).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunFor(30'000);
  crash.Revive(0);  // warm reboot: the 8-byte forwarding address is intact
  cluster.RunFor(200'000);

  ByteReader r(cluster.kernel(1).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

TEST_F(FaultTest, RatsLeaveSinkingShip) {
  // Degrade a machine, evacuate it through the process manager, then let it
  // die; all evacuated processes keep running elsewhere.
  Cluster cluster(ClusterConfig{.machines = 3});
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 1);

  // Three workers on the doomed machine 2, created through the PM so it
  // knows about them.
  std::vector<ProcessId> workers;
  for (int i = 0; i < 3; ++i) {
    ByteWriter w;
    w.U64(static_cast<std::uint64_t>(i));
    w.Str("counter");
    w.U16(2);
    w.U32(1024);
    w.U32(512);
    w.U32(256);
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                     {Link{*sink, kLinkReply, 0, 0}});
  }
  ASSERT_TRUE(
      testutil::RunUntil(cluster, [&] { return testutil::CapturedFor(1).size() >= 3; }));
  for (const auto& captured : testutil::CapturedFor(1)) {
    ByteReader r(captured.payload);
    (void)r.U64();
    (void)r.U8();
    workers.push_back(r.Address().pid);
  }

  CrashController crash(&cluster);
  crash.DegradeThenCrash(2, /*grace_us=*/400'000);
  ByteWriter w;
  w.U16(2);
  cluster.kernel(0).SendFromKernel(layout.process_manager, kPmEvacuate, w.Take());

  ASSERT_TRUE(testutil::RunUntil(
      cluster,
      [&] {
        for (const ProcessId& pid : workers) {
          const MachineId at = cluster.HostOf(pid);
          if (at == 2 || at == kNoMachine) {
            return false;
          }
        }
        return true;
      },
      350'000));

  cluster.RunFor(600'000);  // well past the grace period: machine 2 is dead
  EXPECT_TRUE(crash.IsCrashed(2));
  // Everyone still responds to work.
  for (const ProcessId& pid : workers) {
    const MachineId at = cluster.HostOf(pid);
    ASSERT_NE(at, 2);
    cluster.kernel(0).SendFromKernel(ProcessAddress{at, pid}, kIncrement, {});
  }
  cluster.RunFor(50'000);
  for (const ProcessId& pid : workers) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    ASSERT_NE(record, nullptr);
    ByteReader r(record->memory.ReadData(0, 8));
    EXPECT_EQ(r.U64(), 1u);
  }
}

TEST_F(FaultTest, CheckpointRecoversProcessFromCrashedMachine) {
  // Sec. 1: migrate a process "from a processor that has crashed to a
  // working one" using state saved in stable storage.
  Cluster cluster(ClusterConfig{.machines = 3});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  for (int i = 0; i < 4; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  StableStore store;
  ASSERT_TRUE(store.Checkpoint(cluster, counter->pid).ok());

  CrashController crash(&cluster);
  crash.Crash(0);
  ASSERT_TRUE(store.RecoverProcess(cluster, counter->pid, /*destination=*/2).ok());
  cluster.RunUntilIdle();

  ProcessRecord* recovered = cluster.kernel(2).FindProcess(counter->pid);
  ASSERT_NE(recovered, nullptr);
  ByteReader r(recovered->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 4u);  // counted work survived the crash

  // And it continues to accept messages at the new location.
  cluster.kernel(1).SendFromKernel(ProcessAddress{2, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r2(recovered->memory.ReadData(0, 8));
  EXPECT_EQ(r2.U64(), 5u);
}

TEST_F(FaultTest, RebootedHomeForwardsToRecoveredProcess) {
  Cluster cluster(ClusterConfig{.machines = 3});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  StableStore store;
  ASSERT_TRUE(store.Checkpoint(cluster, counter->pid).ok());
  CrashController crash(&cluster);
  crash.Crash(0);
  ASSERT_TRUE(store.RecoverProcess(cluster, counter->pid, 2).ok());
  cluster.RunUntilIdle();

  crash.Revive(0);
  // The revived home holds a forwarding address; old-address traffic chases
  // the recovered process.  (The recovered copy replaced the stale one.)
  cluster.kernel(1).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ProcessRecord* recovered = cluster.kernel(2).FindProcess(counter->pid);
  ASSERT_NE(recovered, nullptr);
  ByteReader r(recovered->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 1u);
}

// Shared setup for the crash-during-MOVE_DATA tests: a reliable cluster with
// tiny data packets (so one migration takes many MOVE_DATA round trips, with
// a wide window of virtual time to crash into) and a counter carrying a large
// data segment whose contents must survive byte-exact.
ClusterConfig MidTransferConfig() {
  ClusterConfig config;
  config.machines = 2;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 4'000;
  config.reliable.max_retries = 0;  // never give up: delivery is guaranteed
  config.kernel.data_packet_bytes = 256;
  config.kernel.data_window_packets = 2;
  config.trace_enabled = true;  // the checker keys messages by trace id
  return config;
}

TEST_F(FaultTest, SourceCrashMidTransferStillDeliversExactlyOnce) {
  // Crash the *source* while MOVE_DATA packets are in flight.  The paper's
  // guarantee -- any message sent will eventually be delivered -- extends to
  // the migration protocol itself: after the warm reboot the transfer must
  // resume, and the cluster must end with exactly one live, intact copy.
  Cluster cluster(MidTransferConfig());
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 32768, 2048);
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunFor(2'000);  // 32 KiB in 256-byte packets: transfer barely begun
  CrashController crash(&cluster);
  crash.Crash(0);
  cluster.RunFor(30'000);  // destination retransmits into the dead machine
  crash.Revive(0);
  cluster.RunUntilIdle();

  // Exactly one live copy, wherever it ended up, with its count intact.
  ProcessRecord* record = cluster.FindProcessAnywhere(counter->pid);
  ASSERT_NE(record, nullptr);
  const MachineId host = cluster.HostOf(counter->pid);
  ASSERT_NE(host, kNoMachine);
  ByteReader r(record->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 3u);

  // Still reachable through the original address.
  cluster.kernel(1).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r2(cluster.FindProcessAnywhere(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r2.U64(), 4u);

  cluster.SetObserver(nullptr);
  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
}

TEST_F(FaultTest, DestinationCrashBeforeRestartStillDeliversExactlyOnce) {
  // Crash the *destination* while it holds a partial image, before the
  // restart handshake completes, with stale-address traffic arriving during
  // the outage.  After the reboot no copy may be lost and none duplicated.
  Cluster cluster(MidTransferConfig());
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 32768, 2048);
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 2; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunFor(8'000);  // deep into the section transfer, restart not acked
  CrashController crash(&cluster);
  crash.Crash(1);
  // Traffic addressed at the original location keeps flowing into the crash
  // window; the reliable layer must hold it until somebody can consume it.
  cluster.kernel(0).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunFor(30'000);
  crash.Revive(1);
  cluster.RunUntilIdle();

  ProcessRecord* record = cluster.FindProcessAnywhere(counter->pid);
  ASSERT_NE(record, nullptr);
  ASSERT_NE(cluster.HostOf(counter->pid), kNoMachine);
  ByteReader r(record->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 3u);  // 2 before + 1 during the outage, no duplicates

  cluster.SetObserver(nullptr);
  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
}

TEST_F(FaultTest, CheckpointOfMissingProcessFails) {
  Cluster cluster(ClusterConfig{.machines = 2});
  StableStore store;
  EXPECT_FALSE(store.Checkpoint(cluster, ProcessId{0, 999}).ok());
  EXPECT_FALSE(store.RecoverProcess(cluster, ProcessId{0, 999}, 1).ok());
}

}  // namespace
}  // namespace demos
