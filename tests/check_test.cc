// Tests for the cluster invariant checker and the seed-driven chaos harness
// (src/check/).  The headline property: a deliberately broken forwarding
// implementation -- one flipped header field per hop -- is caught by the
// checker with a seed that replays the failure exactly, and the same seed
// runs clean once the fault is removed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/check/chaos.h"
#include "src/check/invariants.h"
#include "tests/test_util.h"

namespace demos {
namespace {

bool HasInvariant(const std::vector<Violation>& violations, const std::string& name) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.invariant == name; });
}

// A forwarding implementation with a one-bit bug: every forwarded message has
// its next-hop header field pointed at the wrong machine.  `machines` bounds
// the flip so the address stays routable (the bug mis-routes, it does not
// corrupt framing).
ChaosOptions BrokenForwarding(int machines) {
  ChaosOptions options;
  options.collect_trace = false;
  options.forward_fault = [machines](Message& msg) {
    msg.receiver.last_known_machine =
        static_cast<MachineId>((msg.receiver.last_known_machine + 1) % machines);
  };
  return options;
}

// Seeds whose scenarios exercise forwarding: forwarding mode on and at least
// a handful of migrations, so forwarding hops actually happen.
bool ExercisesForwarding(const ChaosScenario& s) {
  return s.forwarding_mode && s.migrations.size() >= 4;
}

TEST(ChaosScenarioTest, SameSeedDerivesSamePlan) {
  const ChaosScenario a = ScenarioFromSeed(42);
  const ChaosScenario b = ScenarioFromSeed(42);
  EXPECT_EQ(a.Describe(), b.Describe());
  EXPECT_EQ(a.machines, b.machines);
  EXPECT_EQ(a.migrations.size(), b.migrations.size());
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
}

TEST(ChaosScenarioTest, DisableFeatureReportsInactivity) {
  ChaosScenario s = ScenarioFromSeed(1);
  s.crashes.clear();
  EXPECT_FALSE(DisableFeature(&s, ChaosFeature::kCrashes));
  s.crashes.push_back({1000, 5000, 0});
  EXPECT_TRUE(DisableFeature(&s, ChaosFeature::kCrashes));
  EXPECT_TRUE(s.crashes.empty());
}

TEST(ChaosHarnessTest, CleanSeedsPass) {
  ChaosOptions quiet;
  quiet.collect_trace = false;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const ChaosResult result = RunScenario(ScenarioFromSeed(seed), quiet);
    EXPECT_TRUE(result.ok()) << "seed " << seed << ": "
                             << (result.violations.empty()
                                     ? std::string("no detail")
                                     : result.violations.front().ToString());
    EXPECT_TRUE(result.quiescent) << "seed " << seed;
    EXPECT_GT(result.messages_tracked, 0u) << "seed " << seed;
  }
}

TEST(ChaosHarnessTest, SameSeedSameOutcome) {
  // Replayability is the whole point of `chaos_fuzz --seed=N`: the run is a
  // pure function of the seed.
  ChaosOptions quiet;
  quiet.collect_trace = false;
  const ChaosResult first = RunScenario(ScenarioFromSeed(7), quiet);
  const ChaosResult second = RunScenario(ScenarioFromSeed(7), quiet);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.messages_tracked, second.messages_tracked);
  EXPECT_EQ(first.probe_rounds, second.probe_rounds);
  EXPECT_EQ(first.violations.size(), second.violations.size());
}

TEST(ChaosHarnessTest, BrokenForwardingCaughtWithReplayableSeed) {
  // Plant the bug, sweep seeds until one catches it, then replay: the same
  // seed must fail again under the fault and pass clean without it.
  std::uint64_t caught_seed = 0;
  for (std::uint64_t seed = 1; seed <= 64 && caught_seed == 0; ++seed) {
    const ChaosScenario scenario = ScenarioFromSeed(seed);
    if (!ExercisesForwarding(scenario)) {
      continue;
    }
    if (!RunScenario(scenario, BrokenForwarding(scenario.machines)).ok()) {
      caught_seed = seed;
    }
  }
  ASSERT_NE(caught_seed, 0u) << "no seed in 1..64 caught the planted forwarding bug";

  const ChaosScenario scenario = ScenarioFromSeed(caught_seed);
  const ChaosResult broken = RunScenario(scenario, BrokenForwarding(scenario.machines));
  EXPECT_FALSE(broken.ok()) << "seed " << caught_seed << " did not replay the failure";

  ChaosOptions quiet;
  quiet.collect_trace = false;
  const ChaosResult clean = RunScenario(scenario, quiet);
  EXPECT_TRUE(clean.ok()) << "seed " << caught_seed
                          << " fails even without the fault: " << clean.violations.size()
                          << " violations";
}

TEST(ChaosHarnessTest, MinimizerShrinksFailingScenario) {
  // Find a failing (seed, fault) pair with several active feature axes, then
  // check the minimizer only returns scenarios that still fail.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const ChaosScenario scenario = ScenarioFromSeed(seed);
    if (!ExercisesForwarding(scenario) || scenario.migrations.size() < 8) {
      continue;
    }
    const ChaosOptions options = BrokenForwarding(scenario.machines);
    if (RunScenario(scenario, options).ok()) {
      continue;
    }
    const MinimizeResult min = MinimizeScenario(scenario, options);
    EXPECT_GT(min.runs, 0);
    EXPECT_FALSE(RunScenario(min.scenario, options).ok())
        << "minimized scenario no longer fails (seed " << seed << ")";
    EXPECT_LE(min.scenario.migrations.size(), scenario.migrations.size());
    return;
  }
  FAIL() << "no reducible failing scenario found in seeds 1..64";
}

TEST(ClusterCheckerTest, CleanMigrationPassesAllInvariants) {
  testutil::RegisterPrograms();
  ClusterConfig config;
  config.machines = 3;
  config.trace_enabled = true;
  Cluster cluster(config);
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  checker.ExpectLive(counter->pid);
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, counter->pid, 0, 2);
  // Stale-address traffic exercises the forwarding path under the checker.
  cluster.kernel(1).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  cluster.SetObserver(nullptr);

  const std::vector<Violation> violations = checker.CheckAtQuiescence();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? std::string() : violations.front().ToString());
  EXPECT_GE(checker.tracked_messages(), 4u);
  EXPECT_EQ(checker.consumed_messages(), checker.tracked_messages());
}

TEST(ChaosScenarioTest, PermanentDeathScenarioIsDeterministicAndArmed) {
  const ChaosScenario a = PermanentDeathScenarioFromSeed(42);
  const ChaosScenario b = PermanentDeathScenarioFromSeed(42);
  EXPECT_EQ(a.Describe(), b.Describe());
  ASSERT_EQ(a.deaths.size(), 1u);
  EXPECT_EQ(a.deaths[0].at, b.deaths[0].at);
  EXPECT_EQ(a.deaths[0].machine, b.deaths[0].machine);
  // The variant must arm the failure machinery the deaths exercise: finite
  // retransmission, per-phase deadlines, and no revival crash windows.
  EXPECT_TRUE(a.crashes.empty());
  EXPECT_TRUE(a.reliable);
  EXPECT_GT(a.max_retries, 0u);
  EXPECT_GT(a.migration_deadline_us, 0);
  EXPECT_GE(a.machines, 3);
}

TEST(ChaosHarnessTest, PermanentDeathSeedsPass) {
  ChaosOptions quiet;
  quiet.collect_trace = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosResult result = RunScenario(PermanentDeathScenarioFromSeed(seed), quiet);
    EXPECT_TRUE(result.ok()) << "permadeath seed " << seed << ": "
                             << (result.violations.empty()
                                     ? std::string("no detail")
                                     : result.violations.front().ToString());
    EXPECT_TRUE(result.quiescent) << "permadeath seed " << seed;
  }
}

TEST(ClusterCheckerTest, FrozenMigrationFlaggedAsLivenessViolation) {
  // I8: migrate toward a silently dead destination with the watchdogs
  // DISABLED (deadlines 0).  The source freezes the process, the offer goes
  // into the void, and nothing ever resolves it -- exactly the stuck state
  // the liveness audit exists to catch.
  testutil::RegisterPrograms();
  ClusterConfig config;
  config.machines = 2;
  config.trace_enabled = true;
  Cluster cluster(config);
  ClusterChecker checker(&cluster);
  cluster.SetObserver(&checker);

  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  checker.ExpectLive(counter->pid);

  cluster.kernel(1).SetHalted(true);  // dies without the checker being told
  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunUntilIdle();
  cluster.SetObserver(nullptr);

  EXPECT_TRUE(HasInvariant(checker.CheckAtQuiescence(), "liveness"));
}

TEST(ClusterCheckerTest, DualOwnerFlagged) {
  // Force the bug I4 exists to catch: the same process live on two kernels at
  // once (a botched recovery that restores without reclaiming the original).
  testutil::RegisterPrograms();
  ClusterConfig config;
  config.machines = 2;
  config.trace_enabled = true;
  Cluster cluster(config);

  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  auto checkpoint = cluster.kernel(0).CheckpointProcess(counter->pid);
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(cluster.kernel(1).AdoptProcess(*checkpoint).ok());
  cluster.RunUntilIdle();

  ClusterChecker checker(&cluster);
  checker.ExpectLive(counter->pid);
  EXPECT_TRUE(HasInvariant(checker.CheckAtQuiescence(), "single-owner"));
}

TEST(ClusterCheckerTest, LostProcessFlagged) {
  ClusterConfig config;
  config.machines = 2;
  Cluster cluster(config);
  ClusterChecker checker(&cluster);
  checker.ExpectLive(ProcessId{0, 4242});  // never spawned
  EXPECT_TRUE(HasInvariant(checker.CheckAtQuiescence(), "single-owner"));
}

}  // namespace
}  // namespace demos
