// Tests for message serialization and the wire format.

#include <gtest/gtest.h>

#include "src/kernel/message.h"

namespace demos {
namespace {

Message SampleMessage() {
  Message m;
  m.sender = ProcessAddress{1, {1, 10}};
  m.receiver = ProcessAddress{2, {0, 20}};
  m.flags = kLinkDeliverToKernel;
  m.type = MsgType::kMigrateRequest;
  m.payload = {1, 2, 3, 4};
  m.hop_count = 3;
  Link carried;
  carried.address = ProcessAddress{1, {1, 10}};
  carried.flags = kLinkReply;
  m.carried_links.push_back(carried);
  return m;
}

TEST(MessageTest, RoundTrip) {
  Message m = SampleMessage();
  Result<Message> back = Message::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sender, m.sender);
  EXPECT_EQ(back->receiver, m.receiver);
  EXPECT_EQ(back->flags, m.flags);
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->payload, m.payload);
  EXPECT_EQ(back->hop_count, m.hop_count);
  ASSERT_EQ(back->carried_links.size(), 1u);
  EXPECT_EQ(back->carried_links[0], m.carried_links[0]);
}

TEST(MessageTest, WireSizeMatchesSerialization) {
  Message m = SampleMessage();
  EXPECT_EQ(m.Serialize().size(), m.WireSize());
}

TEST(MessageTest, EmptyMessageIsHeaderOnly) {
  Message m;
  m.sender = KernelAddress(0);
  m.receiver = KernelAddress(1);
  m.type = MsgType::kCleanupDone;
  EXPECT_EQ(m.Serialize().size(), Message::WireHeaderSize());
}

TEST(MessageTest, TruncatedWireFails) {
  Message m = SampleMessage();
  Bytes wire = m.Serialize();
  wire.resize(wire.size() - 3);
  Result<Message> back = Message::Deserialize(wire);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(MessageTest, DeliverToKernelFlag) {
  Message m;
  EXPECT_FALSE(m.deliver_to_kernel());
  m.flags = kLinkDeliverToKernel;
  EXPECT_TRUE(m.deliver_to_kernel());
}

TEST(MessageTest, KernelAddressUsesLocalIdZero) {
  ProcessAddress k = KernelAddress(7);
  EXPECT_EQ(k.last_known_machine, 7);
  EXPECT_EQ(k.pid.creating_machine, 7);
  EXPECT_EQ(k.pid.local_id, 0u);
  EXPECT_TRUE(IsKernelPid(k.pid));
  EXPECT_FALSE(IsKernelPid(ProcessId{7, 1}));
}

TEST(MessageTest, AdminTypeClassification) {
  // Exactly the paper's 9-message control protocol counts as administrative.
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateRequest));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateOffer));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateAccept));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateReject));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMoveDataReq));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kTransferComplete));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kCleanupDone));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateDone));

  EXPECT_FALSE(IsMigrationAdminType(MsgType::kMoveDataPacket));
  EXPECT_FALSE(IsMigrationAdminType(MsgType::kMoveDataAck));
  EXPECT_FALSE(IsMigrationAdminType(MsgType::kLinkUpdate));
  EXPECT_FALSE(IsMigrationAdminType(MsgType::kUserBase));
}

TEST(MessageTest, TypeNamesAreDistinctive) {
  EXPECT_STREQ(MsgTypeName(MsgType::kMigrateOffer), "MIGRATE_OFFER");
  EXPECT_STREQ(MsgTypeName(MsgType::kLinkUpdate), "LINK_UPDATE");
  EXPECT_STREQ(MsgTypeName(static_cast<MsgType>(2000)), "USER");
}

TEST(MessageTest, ToStringMentionsEndpoints) {
  Message m = SampleMessage();
  const std::string s = m.ToString();
  EXPECT_NE(s.find("MIGRATE_REQUEST"), std::string::npos);
  EXPECT_NE(s.find("p1.10@m1"), std::string::npos);
}

TEST(MessageTest, ManyCarriedLinksRoundTrip) {
  Message m;
  m.sender = KernelAddress(0);
  m.receiver = ProcessAddress{1, {1, 1}};
  m.type = MsgType::kUserBase;
  for (std::uint32_t i = 0; i < 20; ++i) {
    Link l;
    l.address = ProcessAddress{0, {0, i + 1}};
    m.carried_links.push_back(l);
  }
  Result<Message> back = Message::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->carried_links.size(), 20u);
  EXPECT_EQ(back->carried_links[19].address.pid.local_id, 20u);
}

TEST(MessageTest, ViaPathRoundTrips) {
  Message m = SampleMessage();
  m.RecordVia(3);
  m.RecordVia(7);
  Result<Message> back = Message::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->via_count, 2);
  EXPECT_EQ(back->via[0], 3);
  EXPECT_EQ(back->via[1], 7);
}

TEST(MessageTest, ViaPathSaturatesSlotsButKeepsTrueCount) {
  // A chain longer than kMaxViaSlots keeps the first hops (the ones worth
  // collapsing -- they are the stalest) and the true traversal count.
  Message m = SampleMessage();
  for (std::uint16_t i = 0; i < 6; ++i) {
    m.RecordVia(static_cast<MachineId>(i));
  }
  Result<Message> back = Message::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->via_count, 6);
  for (std::size_t i = 0; i < Message::kMaxViaSlots; ++i) {
    EXPECT_EQ(back->via[i], i);
  }
}

// --- MessageView: in-place header decoding over a shared frame. ---

TEST(MessageViewTest, ParseAliasesTheFrameBuffer) {
  Message m = SampleMessage();
  PayloadRef frame(m.Serialize());
  Result<MessageView> view = MessageView::Parse(frame);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->sender(), m.sender);
  EXPECT_EQ(view->receiver(), m.receiver);
  EXPECT_EQ(view->type(), m.type);
  EXPECT_EQ(view->hop_count(), m.hop_count);
  EXPECT_TRUE(view->deliver_to_kernel());
  // The payload accessor is a window into the frame, not a copy.
  EXPECT_EQ(view->payload(), m.payload);
  EXPECT_TRUE(view->payload().SharesBufferWith(frame));
}

TEST(MessageViewTest, ToMessageKeepsPayloadZeroCopy) {
  Message m = SampleMessage();
  PayloadRef frame(m.Serialize());
  Result<MessageView> view = MessageView::Parse(frame);
  ASSERT_TRUE(view.ok());
  Message back = view->ToMessage();
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_TRUE(back.payload.SharesBufferWith(frame));
}

TEST(MessageViewTest, TruncatedFrameReportsError) {
  Message m = SampleMessage();
  Bytes wire = m.Serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    Result<MessageView> view = MessageView::Parse(PayloadRef(std::move(truncated)));
    EXPECT_FALSE(view.ok()) << "cut at " << cut;
  }
}

// --- Frame(): one allocation end to end, patched in place when forwarded. ---

TEST(MessageFrameTest, ReceivedMessageReframesWithoutReserializing) {
  // Emulate the pipeline: the sender's Message dies after framing, so the
  // receiver is the sole owner of the wire buffer (as after SimNetwork moves
  // the frame into the delivery handler).
  const std::uint8_t expected_hops = SampleMessage().hop_count + 1;
  PayloadRef frame;
  {
    Message m = SampleMessage();
    frame = m.Frame();
  }
  Result<Message> received = Message::Deserialize(std::move(frame));
  ASSERT_TRUE(received.ok());

  // Forwarding patches machine/hop in the existing frame: no new buffer, no
  // bytes copied.
  received->receiver.last_known_machine = 9;
  received->hop_count++;
  PayloadCounters::Reset();
  PayloadRef forwarded = received->Frame();
  EXPECT_EQ(PayloadCounters::allocations, 0u) << "re-frame must not re-serialize";
  EXPECT_EQ(PayloadCounters::copied_bytes, 0u) << "re-frame must patch in place";
  EXPECT_TRUE(forwarded.SharesBufferWith(received->payload));

  Result<Message> at_dest = Message::Deserialize(forwarded);
  ASSERT_TRUE(at_dest.ok());
  EXPECT_EQ(at_dest->receiver.last_known_machine, 9);
  EXPECT_EQ(at_dest->hop_count, expected_hops);
  EXPECT_EQ(at_dest->payload, SampleMessage().payload);
}

TEST(MessageFrameTest, PatchingCopiesWhenFrameIsShared) {
  Message m = SampleMessage();
  Result<Message> received = Message::Deserialize(m.Frame());
  ASSERT_TRUE(received.ok());
  PayloadRef retransmit_copy = received->Frame();  // e.g. held by ReliableTransport

  received->receiver.last_known_machine = 9;
  PayloadRef forwarded = received->Frame();
  // COW: the retransmit buffer must keep the original receiver machine.
  EXPECT_FALSE(forwarded.SharesBufferWith(retransmit_copy));
  Result<Message> old_frame = Message::Deserialize(retransmit_copy);
  ASSERT_TRUE(old_frame.ok());
  EXPECT_EQ(old_frame->receiver.last_known_machine, m.receiver.last_known_machine);
}

TEST(MessageFrameTest, ViaPathPatchesInPlaceOnForward) {
  // Forwarding appends a via hop; like receiver machine and hop count, it is
  // a hop-mutable header field patched into the owned frame, not a cause for
  // re-serialization.
  PayloadRef frame;
  {
    Message m = SampleMessage();
    frame = m.Frame();
  }
  Result<Message> received = Message::Deserialize(std::move(frame));
  ASSERT_TRUE(received.ok());
  received->RecordVia(4);
  PayloadCounters::Reset();
  PayloadRef forwarded = received->Frame();
  EXPECT_EQ(PayloadCounters::allocations, 0u);
  Result<Message> at_dest = Message::Deserialize(forwarded);
  ASSERT_TRUE(at_dest.ok());
  EXPECT_EQ(at_dest->via_count, 1);
  EXPECT_EQ(at_dest->via[0], 4);
}

TEST(MessageFrameTest, MutatedPayloadForcesReserialize) {
  Message m = SampleMessage();
  Result<Message> received = Message::Deserialize(m.Frame());
  ASSERT_TRUE(received.ok());
  received->payload = {9, 9, 9, 9, 9};
  Result<Message> back = Message::Deserialize(received->Frame());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->payload, (Bytes{9, 9, 9, 9, 9}));
}

}  // namespace
}  // namespace demos
