// Tests for message serialization and the wire format.

#include <gtest/gtest.h>

#include "src/kernel/message.h"

namespace demos {
namespace {

Message SampleMessage() {
  Message m;
  m.sender = ProcessAddress{1, {1, 10}};
  m.receiver = ProcessAddress{2, {0, 20}};
  m.flags = kLinkDeliverToKernel;
  m.type = MsgType::kMigrateRequest;
  m.payload = {1, 2, 3, 4};
  m.hop_count = 3;
  Link carried;
  carried.address = ProcessAddress{1, {1, 10}};
  carried.flags = kLinkReply;
  m.carried_links.push_back(carried);
  return m;
}

TEST(MessageTest, RoundTrip) {
  Message m = SampleMessage();
  bool ok = false;
  Message back = Message::Deserialize(m.Serialize(), &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(back.sender, m.sender);
  EXPECT_EQ(back.receiver, m.receiver);
  EXPECT_EQ(back.flags, m.flags);
  EXPECT_EQ(back.type, m.type);
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_EQ(back.hop_count, m.hop_count);
  ASSERT_EQ(back.carried_links.size(), 1u);
  EXPECT_EQ(back.carried_links[0], m.carried_links[0]);
}

TEST(MessageTest, WireSizeMatchesSerialization) {
  Message m = SampleMessage();
  EXPECT_EQ(m.Serialize().size(), m.WireSize());
}

TEST(MessageTest, EmptyMessageIsHeaderOnly) {
  Message m;
  m.sender = KernelAddress(0);
  m.receiver = KernelAddress(1);
  m.type = MsgType::kCleanupDone;
  EXPECT_EQ(m.Serialize().size(), Message::WireHeaderSize());
}

TEST(MessageTest, TruncatedWireFails) {
  Message m = SampleMessage();
  Bytes wire = m.Serialize();
  wire.resize(wire.size() - 3);
  bool ok = true;
  (void)Message::Deserialize(wire, &ok);
  EXPECT_FALSE(ok);
}

TEST(MessageTest, DeliverToKernelFlag) {
  Message m;
  EXPECT_FALSE(m.deliver_to_kernel());
  m.flags = kLinkDeliverToKernel;
  EXPECT_TRUE(m.deliver_to_kernel());
}

TEST(MessageTest, KernelAddressUsesLocalIdZero) {
  ProcessAddress k = KernelAddress(7);
  EXPECT_EQ(k.last_known_machine, 7);
  EXPECT_EQ(k.pid.creating_machine, 7);
  EXPECT_EQ(k.pid.local_id, 0u);
  EXPECT_TRUE(IsKernelPid(k.pid));
  EXPECT_FALSE(IsKernelPid(ProcessId{7, 1}));
}

TEST(MessageTest, AdminTypeClassification) {
  // Exactly the paper's 9-message control protocol counts as administrative.
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateRequest));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateOffer));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateAccept));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateReject));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMoveDataReq));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kTransferComplete));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kCleanupDone));
  EXPECT_TRUE(IsMigrationAdminType(MsgType::kMigrateDone));

  EXPECT_FALSE(IsMigrationAdminType(MsgType::kMoveDataPacket));
  EXPECT_FALSE(IsMigrationAdminType(MsgType::kMoveDataAck));
  EXPECT_FALSE(IsMigrationAdminType(MsgType::kLinkUpdate));
  EXPECT_FALSE(IsMigrationAdminType(MsgType::kUserBase));
}

TEST(MessageTest, TypeNamesAreDistinctive) {
  EXPECT_STREQ(MsgTypeName(MsgType::kMigrateOffer), "MIGRATE_OFFER");
  EXPECT_STREQ(MsgTypeName(MsgType::kLinkUpdate), "LINK_UPDATE");
  EXPECT_STREQ(MsgTypeName(static_cast<MsgType>(2000)), "USER");
}

TEST(MessageTest, ToStringMentionsEndpoints) {
  Message m = SampleMessage();
  const std::string s = m.ToString();
  EXPECT_NE(s.find("MIGRATE_REQUEST"), std::string::npos);
  EXPECT_NE(s.find("p1.10@m1"), std::string::npos);
}

TEST(MessageTest, ManyCarriedLinksRoundTrip) {
  Message m;
  m.sender = KernelAddress(0);
  m.receiver = ProcessAddress{1, {1, 1}};
  m.type = MsgType::kUserBase;
  for (std::uint32_t i = 0; i < 20; ++i) {
    Link l;
    l.address = ProcessAddress{0, {0, i + 1}};
    m.carried_links.push_back(l);
  }
  bool ok = false;
  Message back = Message::Deserialize(m.Serialize(), &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(back.carried_links.size(), 20u);
  EXPECT_EQ(back.carried_links[19].address.pid.local_id, 20u);
}

}  // namespace
}  // namespace demos
