// Unit tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/base/small_fn.h"
#include "src/sim/event_queue.h"

namespace demos {
namespace {

TEST(EventQueueTest, StartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.Now(), 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(30, [&] { order.push_back(3); });
  q.At(10, [&] { order.push_back(1); });
  q.At(20, [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30u);
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.At(5, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, AfterIsRelative) {
  EventQueue q;
  SimTime fired_at = 0;
  q.At(100, [&] {
    q.After(50, [&] { fired_at = q.Now(); });
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  bool ran = false;
  q.At(100, [&] {
    q.At(10, [&] { ran = true; });  // in the past; runs at now
  });
  q.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.Now(), 100u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.At(10, [&] { ++count; });
  q.At(20, [&] { ++count; });
  q.At(30, [&] { ++count; });
  q.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.Now(), 20u);
  q.RunUntilIdle();
  EXPECT_EQ(count, 3);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(500);
  EXPECT_EQ(q.Now(), 500u);
}

TEST(EventQueueTest, RunForIsRelative) {
  EventQueue q;
  q.RunFor(100);
  q.RunFor(100);
  EXPECT_EQ(q.Now(), 200u);
}

TEST(EventQueueTest, MaxEventsBoundsRunaway) {
  EventQueue q;
  std::size_t fired = 0;
  std::function<void()> loop = [&] {
    ++fired;
    q.After(1, loop);
  };
  q.After(1, loop);
  const std::size_t executed = q.RunUntilIdle(1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_EQ(fired, 1000u);
  EXPECT_FALSE(q.Empty());
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  q.At(1, [] {});
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  q.At(1, [&] {
    q.At(2, [&] {
      q.At(3, [&] { depth = 3; });
    });
  });
  q.RunUntilIdle();
  EXPECT_EQ(depth, 3);
}

namespace {
struct CopyProbe {
  CopyProbe() = default;
  CopyProbe(const CopyProbe& other) : copies(other.copies) { ++*copies; }
  CopyProbe& operator=(const CopyProbe& other) {
    copies = other.copies;
    ++*copies;
    return *this;
  }
  CopyProbe(CopyProbe&&) = default;
  CopyProbe& operator=(CopyProbe&&) = default;
  int* copies = nullptr;
};
}  // namespace

// Dispatch must move the callback out of the heap, never copy it: a copy per
// event would re-copy every captured payload on the hot path.
TEST(SmallFnTest, InlineCapturesAvoidTheHeapAndMoveCleanly) {
  // The event queue's Callback is SmallFn<56>: captures up to 56 bytes live
  // inline in the event node.  Prove the inline path runs, moves, and
  // destroys exactly one live copy of its capture.
  struct LifeProbe {
    int* alive;
    explicit LifeProbe(int* a) : alive(a) { ++*alive; }
    LifeProbe(LifeProbe&& o) noexcept : alive(o.alive) { ++*alive; }
    LifeProbe(const LifeProbe&) = delete;
    ~LifeProbe() { --*alive; }
  };
  static_assert(sizeof(LifeProbe) <= 56, "must take the inline path");

  int alive = 0;
  int runs = 0;
  {
    SmallFn<56> fn([probe = LifeProbe(&alive), &runs] { ++runs; });
    EXPECT_EQ(alive, 1) << "exactly the inline copy lives";
    SmallFn<56> moved = std::move(fn);
    EXPECT_EQ(alive, 1) << "move transfers, never duplicates";
    EXPECT_FALSE(static_cast<bool>(fn)) << "moved-from fn is empty";
    moved();
    moved();
    EXPECT_EQ(runs, 2);
  }
  EXPECT_EQ(alive, 0) << "capture destroyed with the SmallFn";
}

TEST(SmallFnTest, OversizedCapturesFallBackToTheHeapTransparently) {
  struct Big {
    unsigned char padding[128];  // > 56 bytes: forced onto the heap path
    int* runs;
  };
  int runs = 0;
  Big big{};
  big.runs = &runs;
  SmallFn<56> fn([big] { ++*big.runs; });
  SmallFn<56> moved = std::move(fn);
  moved();
  EXPECT_EQ(runs, 1);

  // Move-assignment over a live callable destroys the old one first.
  moved = SmallFn<56>([&runs] { runs += 10; });
  moved();
  EXPECT_EQ(runs, 11);
}

TEST(EventQueueTest, MoveOnlyCapturesSchedule) {
  // std::function rejected move-only captures outright; the point of SmallFn
  // as EventQueue::Callback is that an event can own its payload.
  EventQueue q;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  q.At(5, [owned = std::move(payload), &seen] { seen = *owned + 1; });
  q.RunUntilIdle();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, StepMovesCallbacksWithoutCopying) {
  EventQueue q;
  int copies = 0;
  int runs = 0;
  for (int i = 0; i < 16; ++i) {
    CopyProbe probe;
    probe.copies = &copies;
    q.At(static_cast<SimTime>(i), [probe, &runs] { ++runs; });
  }
  const int after_scheduling = copies;
  q.RunUntilIdle();
  EXPECT_EQ(runs, 16);
  EXPECT_EQ(copies, after_scheduling) << "Step() copied a callback";
}

}  // namespace
}  // namespace demos
