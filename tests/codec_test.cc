// Robustness tests for every wire codec: round trips, and the guarantee that
// arbitrary/truncated bytes never crash a decoder (they fail cleanly or
// produce a value, but never read out of bounds -- the ASan build enforces
// the memory-safety half of this).

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/kernel/data_mover.h"
#include "src/kernel/load_report.h"
#include "src/kernel/message.h"
#include "src/kernel/process.h"

namespace demos {
namespace {

TEST(LoadReportCodecTest, RoundTrip) {
  LoadReport report;
  report.machine = 3;
  report.live_processes = 7;
  report.ready_processes = 2;
  report.cpu_busy_delta_us = 12345;
  report.window_us = 50000;
  report.memory_used = 1 << 20;
  report.memory_limit = 1 << 26;
  for (std::uint32_t i = 0; i < 5; ++i) {
    ProcessLoadEntry entry;
    entry.pid = ProcessId{3, i + 1};
    entry.cpu_used_us = i * 100;
    entry.msgs_handled = i * 7;
    entry.top_partner = static_cast<MachineId>(i % 2);
    entry.top_partner_msgs = i * 3;
    report.processes.push_back(entry);
  }

  Result<LoadReport> back = LoadReport::Decode(report.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->machine, report.machine);
  EXPECT_EQ(back->live_processes, report.live_processes);
  EXPECT_EQ(back->cpu_busy_delta_us, report.cpu_busy_delta_us);
  EXPECT_EQ(back->memory_limit, report.memory_limit);
  ASSERT_EQ(back->processes.size(), 5u);
  EXPECT_EQ(back->processes[4].pid, (ProcessId{3, 5}));
  EXPECT_EQ(back->processes[4].top_partner_msgs, 12u);
}

TEST(LoadReportCodecTest, TruncationFailsCleanly) {
  LoadReport report;
  report.machine = 1;
  ProcessLoadEntry entry;
  entry.pid = ProcessId{1, 1};
  report.processes.push_back(entry);
  Bytes wire = report.Encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(LoadReport::Decode(PayloadRef(std::move(truncated))).ok()) << "cut at " << cut;
  }
}

TEST(DataPacketCodecTest, PullRoundTrip) {
  DataPacket packet;
  packet.mode = StreamMode::kPull;
  packet.streamer = 4;
  packet.transfer_id = 99;
  packet.offset = 2048;
  packet.total = 65536;
  packet.chunk = Bytes(512, 0xAA);
  Result<DataPacket> back = DataPacket::Decode(packet.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->mode, StreamMode::kPull);
  EXPECT_EQ(back->streamer, 4);
  EXPECT_EQ(back->transfer_id, 99u);
  EXPECT_EQ(back->offset, 2048u);
  EXPECT_EQ(back->total, 65536u);
  EXPECT_EQ(back->chunk, packet.chunk);
}

TEST(DataPacketCodecTest, PushRoundTripIncludesWriteContext) {
  DataPacket packet;
  packet.mode = StreamMode::kPush;
  packet.streamer = 1;
  packet.transfer_id = 7;
  packet.offset = 0;
  packet.total = 100;
  packet.area_base = 256;
  packet.window_offset = 200;
  packet.window_length = 1000;
  packet.link_flags = kLinkDataWrite;
  packet.instigator = ProcessAddress{0, {0, 5}};
  packet.cookie = 0xC00C1E;
  packet.chunk = Bytes(100, 0x11);
  Result<DataPacket> back = DataPacket::Decode(packet.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->area_base, 256u);
  EXPECT_EQ(back->window_length, 1000u);
  EXPECT_EQ(back->link_flags, kLinkDataWrite);
  EXPECT_EQ(back->instigator.pid, (ProcessId{0, 5}));
  EXPECT_EQ(back->cookie, 0xC00C1Eu);
}

TEST(DataPacketCodecTest, PullEncodingOmitsPushContext) {
  DataPacket pull;
  pull.mode = StreamMode::kPull;
  pull.chunk = Bytes(8, 0);
  DataPacket push;
  push.mode = StreamMode::kPush;
  push.chunk = Bytes(8, 0);
  EXPECT_LT(pull.Encode().size(), push.Encode().size());
}

TEST(DataAckCodecTest, RoundTripWithStatus) {
  DataAck ack;
  ack.mode = StreamMode::kPush;
  ack.transfer_id = 12;
  ack.covered_bytes = 4096;
  ack.packets = 3;
  ack.status = StatusCode::kPermissionDenied;
  Result<DataAck> back = DataAck::Decode(ack.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->mode, StreamMode::kPush);
  EXPECT_EQ(back->transfer_id, 12u);
  EXPECT_EQ(back->covered_bytes, 4096u);
  EXPECT_EQ(back->packets, 3u);
  EXPECT_EQ(back->status, StatusCode::kPermissionDenied);
}

TEST(ReadAreaRequestCodecTest, RoundTrip) {
  ReadAreaRequest req;
  req.transfer_id = 3;
  req.area_offset = 10;
  req.length = 500;
  req.window_offset = 8;
  req.window_length = 600;
  req.link_flags = kLinkDataRead;
  req.reply_machine = 2;
  req.instigator = ProcessAddress{2, {2, 9}};
  req.cookie = 77;
  Result<ReadAreaRequest> back = ReadAreaRequest::Decode(req.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->length, 500u);
  EXPECT_EQ(back->reply_machine, 2);
  EXPECT_EQ(back->instigator.pid.local_id, 9u);
}

// Fuzz-ish: random byte soup through every decoder must not crash; each
// decoder reports failure through its Result.
TEST(CodecFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes soup(rng.Below(128));
    for (auto& b : soup) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    const PayloadRef ref(soup);
    (void)Message::Deserialize(ref);
    (void)LoadReport::Decode(ref);
    (void)DataPacket::Decode(ref);
    (void)DataAck::Decode(ref);
    (void)ReadAreaRequest::Decode(ref);
  }
  SUCCEED();
}

TEST(CodecFuzzTest, TruncatedMessagesNeverCrash) {
  Message m;
  m.sender = ProcessAddress{0, {0, 1}};
  m.receiver = ProcessAddress{1, {1, 2}};
  m.type = MsgType::kUserBase;
  m.payload = Bytes(64, 0x3C);
  Link l;
  l.address = m.sender;
  m.carried_links = {l, l, l};
  Bytes wire = m.Serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Message::Deserialize(PayloadRef(std::move(truncated))).ok());
  }
}

TEST(CodecFuzzTest, MutatedStateBlobsFailCleanly) {
  ProcessRecord record;
  record.pid = ProcessId{0, 1};
  record.memory = MemoryImage::Create("x", 256, 128, 64);
  Bytes resident = record.SerializeResidentState();
  Bytes swappable = record.SerializeSwappableState(0);

  Rng rng(0xBADC0DE);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes r = resident;
    Bytes s = swappable;
    r[rng.Below(r.size())] ^= static_cast<std::uint8_t>(1 + rng.Below(255));
    s[rng.Below(s.size())] ^= static_cast<std::uint8_t>(1 + rng.Below(255));
    ProcessRecord target;
    target.pid = record.pid;
    (void)target.ApplyResidentState(r);   // may fail; must not crash
    (void)target.ApplySwappableState(s, 0);
  }
  SUCCEED();
}

}  // namespace
}  // namespace demos
