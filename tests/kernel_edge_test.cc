// Edge-case kernel tests: self-links, reply-link consumption, link passing
// chains, zero-length transfers, exit semantics, and memory accounting.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace demos {
namespace {

constexpr MsgType kStartLoop = static_cast<MsgType>(1030);
constexpr MsgType kSelfNote = static_cast<MsgType>(1031);
constexpr MsgType kPassItOn = static_cast<MsgType>(1032);

// Sends kSelfNote to itself N times through a link to itself held in its own
// link table ("processes may have more than one link to a given process
// (including to themselves)", Sec. 5).
class SelfLooperProgram : public Program {
 public:
  void OnStart(Context& ctx) override { self_slot_ = ctx.AddLink(ctx.MakeLink()); }

  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type == kStartLoop) {
      remaining_ = msg.payload.empty() ? 0 : msg.payload[0];
      Tick(ctx);
    } else if (msg.type == kSelfNote) {
      ByteReader r(ctx.ReadData(0, 8));
      ByteWriter w;
      w.U64(r.U64() + 1);
      (void)ctx.WriteData(0, w.bytes());
      Tick(ctx);
    }
  }

  Bytes SaveState() const override {
    ByteWriter w;
    w.U32(self_slot_);
    w.U8(remaining_);
    return w.Take();
  }
  void RestoreState(const Bytes& state) override {
    ByteReader r(state);
    self_slot_ = r.U32();
    remaining_ = r.U8();
  }

 private:
  void Tick(Context& ctx) {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    (void)ctx.Send(self_slot_, kSelfNote, {});
  }

  LinkId self_slot_ = kNoLink;
  std::uint8_t remaining_ = 0;
};

// Forwards any carried link to the address named in the payload (link
// passing: "Once a link is given out, it may be passed to other processes
// without the knowledge of the process that created the link", Sec. 2.4).
class PasserProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != kPassItOn || msg.carried_links.empty()) {
      return;
    }
    ByteReader r(msg.payload);
    const ProcessAddress next = r.Address();
    if (next.valid()) {
      Link to_next;
      to_next.address = next;
      Bytes rest(msg.payload.begin() + 8, msg.payload.end());
      (void)ctx.SendOnLink(to_next, kPassItOn, std::move(rest), {msg.carried_links[0]});
    } else {
      // End of the chain: use the carried link.
      (void)ctx.SendOnLink(msg.carried_links[0], kPing, {0x77});
    }
  }
};

class KernelEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    static const bool registered = [] {
      auto& reg = ProgramRegistry::Instance();
      reg.Register("self_looper", [] { return std::make_unique<SelfLooperProgram>(); });
      reg.Register("passer", [] { return std::make_unique<PasserProgram>(); });
      return true;
    }();
    (void)registered;
    GlobalCapture().clear();
  }
};

TEST_F(KernelEdgeTest, SelfSendLoopCounts) {
  Cluster cluster(ClusterConfig{.machines = 1});
  auto looper = cluster.kernel(0).SpawnProcess("self_looper");
  ASSERT_TRUE(looper.ok());
  cluster.RunUntilIdle();
  cluster.kernel(0).SendFromKernel(*looper, kStartLoop, {10});
  cluster.RunUntilIdle();
  ByteReader r(cluster.kernel(0).FindProcess(looper->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 10u);
}

TEST_F(KernelEdgeTest, SelfLinkSurvivesMigration) {
  // The looper's self-link says "machine 0" after moving to machine 1; its
  // self-sends route through the forwarding address, get patched, and keep
  // working -- the Sec. 5 "including to themselves" case.
  Cluster cluster(ClusterConfig{.machines = 2});
  auto looper = cluster.kernel(0).SpawnProcess("self_looper");
  ASSERT_TRUE(looper.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, looper->pid, 0, 1);

  cluster.kernel(0).SendFromKernel(ProcessAddress{1, looper->pid}, kStartLoop, {8});
  cluster.RunUntilIdle();
  ProcessRecord* moved = cluster.kernel(1).FindProcess(looper->pid);
  ASSERT_NE(moved, nullptr);
  ByteReader r(moved->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 8u);
  // The self-link was patched after at most one forwarded hop.
  EXPECT_LE(cluster.kernel(0).stats().Get(stat::kMsgsForwarded), 1);
  const Link* self_link = moved->links.Get(0);  // first (and only) table entry
  ASSERT_NE(self_link, nullptr);
  EXPECT_EQ(self_link->address.pid, looper->pid);
}

TEST_F(KernelEdgeTest, LinkPassedAlongChainStillPointsAtCreator) {
  Cluster cluster(ClusterConfig{.machines = 4});
  ProcessAddress sink = [&] {
    auto s = cluster.kernel(0).SpawnProcess("sink");
    cluster.RunUntilIdle();
    testutil::TagProcess(cluster, *s, 1);
    return *s;
  }();
  auto p1 = cluster.kernel(1).SpawnProcess("passer");
  auto p2 = cluster.kernel(2).SpawnProcess("passer");
  auto p3 = cluster.kernel(3).SpawnProcess("passer");
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  cluster.RunUntilIdle();

  // A link to the sink is passed p1 -> p2 -> p3, then used by p3.
  ByteWriter w;
  w.Address(*p2);
  w.Address(*p3);
  w.Address(ProcessAddress{});  // chain terminator
  Link to_sink;
  to_sink.address = sink;
  cluster.kernel(1).SendFromKernel(*p1, kPassItOn, w.Take(), {to_sink});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, kPing);
  EXPECT_EQ(captured[0].sender.pid, p3->pid);  // used by the END of the chain
}

TEST_F(KernelEdgeTest, LinkPassedThroughChainChasesMigratedCreator) {
  // The sink migrates while its link is in transit through the chain; the
  // final use still lands (context independence + forwarding).
  Cluster cluster(ClusterConfig{.machines = 4});
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  auto p1 = cluster.kernel(1).SpawnProcess("passer");
  auto p2 = cluster.kernel(2).SpawnProcess("passer");
  ASSERT_TRUE(sink.ok() && p1.ok() && p2.ok());
  cluster.RunUntilIdle();
  testutil::TagProcess(cluster, *sink, 2);

  ByteWriter w;
  w.Address(*p2);
  w.Address(ProcessAddress{});
  Link to_sink;
  to_sink.address = *sink;
  cluster.kernel(1).SendFromKernel(*p1, kPassItOn, w.Take(), {to_sink});
  // Migrate the sink immediately: the link is now stale while in the chain.
  (void)cluster.kernel(0).StartMigration(sink->pid, 3, cluster.kernel(0).kernel_address());
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(2);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, kPing);
  EXPECT_EQ(cluster.HostOf(sink->pid), 3);
}

TEST_F(KernelEdgeTest, ReplyLinkIsConsumedBySend) {
  Cluster cluster(ClusterConfig{.machines = 1});
  auto echo = cluster.kernel(0).SpawnProcess("echo");
  ASSERT_TRUE(echo.ok());
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(0).FindProcess(echo->pid);

  Link reply;
  reply.address = *echo;
  reply.flags = kLinkReply;
  const LinkId slot = record->links.Insert(reply);
  KernelContext ctx(&cluster.kernel(0), record);
  ASSERT_TRUE(ctx.Send(slot, kNote, Bytes{}, {}).ok());
  EXPECT_EQ(record->links.Get(slot), nullptr);  // single use (Sec. 2.4)
  EXPECT_FALSE(ctx.Send(slot, kNote, Bytes{}, {}).ok());
}

TEST_F(KernelEdgeTest, NonReplyLinkSurvivesSends) {
  Cluster cluster(ClusterConfig{.machines = 1});
  auto echo = cluster.kernel(0).SpawnProcess("echo");
  ASSERT_TRUE(echo.ok());
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(0).FindProcess(echo->pid);
  Link request;
  request.address = *echo;
  const LinkId slot = record->links.Insert(request);
  KernelContext ctx(&cluster.kernel(0), record);
  ASSERT_TRUE(ctx.Send(slot, kNote, Bytes{}, {}).ok());
  ASSERT_TRUE(ctx.Send(slot, kNote, Bytes{}, {}).ok());
  EXPECT_NE(record->links.Get(slot), nullptr);
}

TEST_F(KernelEdgeTest, ZeroLengthMoveDataCompletes) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 2048, 256);
  auto instigator = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(host.ok() && instigator.ok());
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(0).FindProcess(instigator->pid);
  Link area;
  area.address = *host;
  area.flags = kLinkDataWrite;
  area.data_offset = 0;
  area.data_length = 100;
  const LinkId slot = record->links.Insert(area);
  KernelContext ctx(&cluster.kernel(0), record);
  EXPECT_TRUE(ctx.MoveDataTo(slot, 0, {}, 1).ok());
  cluster.RunUntilIdle();  // the empty stream's single packet + ack settle
  EXPECT_GE(cluster.TotalStat(stat::kDataAcks), 1);
}

TEST_F(KernelEdgeTest, MemoryAccountingBalancesOverLifecycle) {
  Cluster cluster(ClusterConfig{.machines = 2});
  const std::uint64_t before = cluster.kernel(0).memory_used();
  auto addr = cluster.kernel(0).SpawnProcess("idle", 8192, 4096, 2048);
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(0).memory_used(), before + 8192 + 4096 + 2048);

  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);
  EXPECT_EQ(cluster.kernel(0).memory_used(), before);  // reclaimed at source
  EXPECT_GE(cluster.kernel(1).memory_used(), 8192u + 4096 + 2048);

  cluster.kernel(0).SendFromKernel(ProcessAddress{1, addr->pid}, MsgType::kKillProcess, {},
                                   {}, kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(1).memory_used(), 0u);
}

TEST_F(KernelEdgeTest, SuspendedProcessCollectsTimerFiring) {
  Cluster cluster(ClusterConfig{.machines = 1});
  auto timer = cluster.kernel(0).SpawnProcess("timer");
  ASSERT_TRUE(timer.ok());
  cluster.RunFor(100);  // armed for +50ms
  cluster.kernel(0).SendFromKernel(*timer, MsgType::kSuspendProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunFor(100'000);  // timer fires while suspended -> queued

  ProcessRecord* record = cluster.kernel(0).FindProcess(timer->pid);
  ByteReader before(record->memory.ReadData(8, 8));
  EXPECT_EQ(before.U64(), 0u);  // not delivered yet

  cluster.kernel(0).SendFromKernel(*timer, MsgType::kResumeProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  ByteReader after(record->memory.ReadData(8, 8));
  EXPECT_EQ(after.U64(), 1u);  // delivered exactly once after resume
}

TEST_F(KernelEdgeTest, MigrationWhileSenderHoldsStaleLinkInSavedMessage) {
  // A link carried inside a message that sits in a suspended receiver's
  // queue across the receiver's OWN migration still works when finally used.
  Cluster cluster(ClusterConfig{.machines = 3});
  auto passer = cluster.kernel(0).SpawnProcess("passer");
  auto sink = cluster.kernel(2).SpawnProcess("sink");
  ASSERT_TRUE(passer.ok() && sink.ok());
  cluster.RunUntilIdle();
  testutil::TagProcess(cluster, *sink, 3);

  cluster.kernel(0).SendFromKernel(*passer, MsgType::kSuspendProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  ByteWriter w;
  w.Address(ProcessAddress{});  // use immediately when processed
  Link to_sink;
  to_sink.address = *sink;
  cluster.kernel(1).SendFromKernel(*passer, kPassItOn, w.Take(), {to_sink});
  cluster.RunUntilIdle();  // parked in the suspended passer's queue

  testutil::MigrateAndSettle(cluster, passer->pid, 0, 1);  // queue forwarded
  cluster.kernel(1).SendFromKernel(ProcessAddress{1, passer->pid}, MsgType::kResumeProcess,
                                   {}, {}, kLinkDeliverToKernel);
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(3);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, kPing);
}

}  // namespace
}  // namespace demos
