// Tests for the parallel execution engine (src/run): the lock-free mailbox,
// the ShardRouter transport, ParallelCluster quiescence, and -- the point of
// the whole engine -- engine equivalence: one workload runner programmed
// against the Engine interface, instantiated over the deterministic Cluster,
// the free-running ParallelCluster, and the conservatively-synced
// ParallelCluster, must converge to identical process locations, link
// tables, and exactly-once delivery counts on all three.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/stats.h"
#include "src/kernel/cluster.h"
#include "src/kernel/engine.h"
#include "src/run/mpsc_queue.h"
#include "src/run/parallel_cluster.h"
#include "src/run/shard_router.h"
#include "src/workload/programs.h"
#include "src/workload/token_ring_harness.h"

namespace demos {
namespace {

class ParallelClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterWorkloadPrograms(); }
};

// ---------------------------------------------------------------------------
// BoundedMpscQueue units.
// ---------------------------------------------------------------------------

TEST_F(ParallelClusterTest, MpscQueueFifoAndCapacity) {
  BoundedMpscQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_TRUE(queue.Empty());

  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // untouched on failure

  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.TryPop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.TryPop(out));
  EXPECT_TRUE(queue.Empty());

  // Wrap-around after the ring has gone full once.
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 3; ++i) {
      int v = lap * 10 + i;
      ASSERT_TRUE(queue.TryPush(v));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(queue.TryPop(out));
      EXPECT_EQ(out, lap * 10 + i);
    }
  }
}

TEST_F(ParallelClusterTest, MpscQueueMovesOnlyOnSuccess) {
  BoundedMpscQueue<std::unique_ptr<int>> queue(2);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  ASSERT_TRUE(queue.TryPush(a));
  ASSERT_TRUE(queue.TryPush(b));
  EXPECT_EQ(a, nullptr);
  EXPECT_FALSE(queue.TryPush(c));
  ASSERT_NE(c, nullptr);  // a failed push must not consume the item
  EXPECT_EQ(*c, 3);

  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(*out, 1);
  ASSERT_TRUE(queue.TryPush(c));
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(*out, 2);
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(*out, 3);
}

TEST_F(ParallelClusterTest, MpscQueueConcurrentProducersKeepPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 4000;
  BoundedMpscQueue<std::pair<int, int>> queue(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::pair<int, int> item{p, i};
        while (!queue.TryPush(item)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    std::pair<int, int> item;
    if (!queue.TryPop(item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(item.second, next_expected[item.first])
        << "producer " << item.first << " reordered";
    ++next_expected[item.first];
    ++received;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_TRUE(queue.Empty());
}

// ---------------------------------------------------------------------------
// ShardRouter: backpressure and delivery accounting.
// ---------------------------------------------------------------------------

TEST_F(ParallelClusterTest, ShardRouterBackpressureBlocksWithoutLosingOrOrdering) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 3000;
  ShardRouterConfig config;
  config.mailbox_capacity = 8;  // tiny: every producer slams into backpressure
  ShardRouter router(kProducers + 1, config);

  const MachineId sink = 0;
  std::map<std::uint32_t, std::uint32_t> next_seq;
  std::uint64_t received = 0;
  router.Attach(sink, [&](MachineId /*src*/, PayloadRef payload) {
    ByteReader r(payload);
    const std::uint32_t producer = r.U32();
    const std::uint32_t seq = r.U32();
    EXPECT_EQ(seq, next_seq[producer]) << "producer " << producer << " reordered";
    next_seq[producer] = seq + 1;
    ++received;
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    // Each producer thread sends as shard p+1, which it trivially owns.
    producers.emplace_back([&router, p] {
      const auto src = static_cast<MachineId>(p + 1);
      for (int i = 0; i < kPerProducer; ++i) {
        ByteWriter w;
        w.U32(static_cast<std::uint32_t>(p));
        w.U32(static_cast<std::uint32_t>(i));
        router.Send(src, sink, w.Take());
      }
    });
  }

  const std::uint64_t want = static_cast<std::uint64_t>(kProducers) * kPerProducer;
  while (received < want) {
    if (router.Drain(sink, 64) == 0) {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(router.sent(), want);
  EXPECT_EQ(router.consumed(), want);
  EXPECT_GT(router.backpressure_hits(), 0u);
  EXPECT_FALSE(router.HasMail(sink));
}

// ---------------------------------------------------------------------------
// Destination batching: staging visibility, per-link FIFO, spill, elision.
// ---------------------------------------------------------------------------

TEST_F(ParallelClusterTest, ShardRouterBatchingStagesUntilFlushAndKeepsPerLinkFifo) {
  ShardRouterConfig config;
  config.max_batch_frames = 8;
  ShardRouter router(3, config);
  router.SetBatchingEnabled(true);

  std::map<std::uint32_t, std::uint32_t> next_seq;
  std::uint64_t received = 0;
  router.Attach(0, [&](MachineId src, PayloadRef payload) {
    ByteReader r(payload);
    const std::uint32_t producer = r.U32();
    const std::uint32_t seq = r.U32();
    EXPECT_EQ(static_cast<std::uint32_t>(src), producer);
    EXPECT_EQ(seq, next_seq[producer]) << "link " << producer << "->0 reordered";
    next_seq[producer] = seq + 1;
    ++received;
  });

  auto send = [&router](MachineId src, std::uint32_t seq) {
    ByteWriter w;
    w.U32(src);
    w.U32(seq);
    router.Send(src, 0, w.Take());
  };

  // Staged frames are counted as sent (in flight) but invisible to the
  // destination until their lane is published.
  send(1, 0);
  send(1, 1);
  send(2, 0);
  EXPECT_EQ(router.StagedFrames(1), 2u);
  EXPECT_EQ(router.StagedFrames(2), 1u);
  EXPECT_EQ(router.sent(), 3u);
  EXPECT_FALSE(router.HasMail(0));
  EXPECT_EQ(router.Drain(0, 64), 0u);

  // Flush source 2 before source 1: cross-link order is unspecified, but
  // each link must still deliver its own frames in send order.
  EXPECT_EQ(router.Flush(2), 1u);
  EXPECT_EQ(router.Flush(1), 2u);
  EXPECT_EQ(router.StagedFrames(1), 0u);
  EXPECT_EQ(router.Drain(0, 64), 3u);

  // A lane that reaches max_batch_frames publishes itself mid-round; the
  // stragglers follow on the next Flush without reordering the link.
  for (std::uint32_t i = 2; i < 13; ++i) {
    send(1, i);
  }
  EXPECT_EQ(router.StagedFrames(1), 3u);  // 8 auto-published, 3 staged
  EXPECT_TRUE(router.HasMail(0));
  EXPECT_EQ(router.Flush(1), 3u);
  EXPECT_EQ(router.Drain(0, 64), 11u);
  EXPECT_EQ(received, 14u);
  EXPECT_EQ(router.sent(), router.consumed());
}

TEST_F(ParallelClusterTest, ShardRouterBatchPublishSpillsWhenDestinationMailboxFullMidBatch) {
  // Self-sends against a tiny mailbox: the publisher fills its own ring
  // mid-batch, and the blocked publish must rescue the ring into the spill
  // queue instead of deadlocking.  FIFO must survive the ring -> spill hop.
  ShardRouterConfig config;
  config.mailbox_capacity = 2;
  config.max_batch_frames = 4;
  ShardRouter router(1, config);
  router.SetBatchingEnabled(true);
  MetricsEngine metrics(1);
  router.SetObservability(&metrics, nullptr);

  std::uint32_t next = 0;
  router.Attach(0, [&](MachineId src, PayloadRef payload) {
    EXPECT_EQ(src, 0);
    ByteReader r(payload);
    EXPECT_EQ(r.U32(), next);
    ++next;
  });

  constexpr std::uint32_t kFrames = 64;
  std::uint32_t sent = 0;
  for (int phase = 0; phase < 2; ++phase) {
    for (std::uint32_t i = 0; i < kFrames / 2; ++i) {
      ByteWriter w;
      w.U32(sent++);
      router.Send(0, 0, w.Take());  // every 4th send auto-publishes a batch
    }
    router.Flush(0);
    while (router.Drain(0, 16) != 0) {
    }
  }
  EXPECT_GT(router.spill_rescues(), 0u) << "full ring mid-batch must spill";
  EXPECT_EQ(next, kFrames);
  EXPECT_EQ(router.sent(), router.consumed());
  EXPECT_EQ(router.SpillDepth(0), 0u);
  // Batch buffers recycle through the consumer's own free list: after the
  // first drained batches come back, lane acquisition stops hitting the heap.
  EXPECT_GT(metrics.shard(0).Counter(CounterId::kPoolHits), 0u);
  const HistogramSnapshot batch = metrics.shard(0).Histogram(HistogramId::kBatchSize);
  EXPECT_EQ(batch.count, kFrames / 4);
  EXPECT_EQ(batch.sum, kFrames);
}

TEST_F(ParallelClusterTest, ShardRouterElidesNotifyWhenBlockedConsumerIsAwake) {
  // A producer blocked on a full mailbox whose consumer is running (not
  // parked) must not burn a condvar notify per retry: the elision is counted
  // once per backpressure episode instead.
  ShardRouterConfig config;
  config.mailbox_capacity = 2;
  config.spin_before_yield = 4;
  ShardRouter router(2, config);
  MetricsEngine metrics(2);
  router.SetObservability(&metrics, nullptr);
  std::uint64_t received = 0;
  router.Attach(1, [&](MachineId, PayloadRef) { ++received; });

  router.Send(0, 1, Bytes{1});
  router.Send(0, 1, Bytes{2});
  std::thread drainer([&router] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    while (router.Drain(1, 8) == 0) {
      std::this_thread::yield();
    }
  });
  router.Send(0, 1, Bytes{3});  // blocks until the drainer makes room
  drainer.join();
  while (router.Drain(1, 8) != 0) {
  }
  EXPECT_EQ(received, 3u);
  EXPECT_GT(router.backpressure_hits(), 0u);
  EXPECT_GE(metrics.shard(0).Counter(CounterId::kNotifiesElided), 1u);
  EXPECT_EQ(metrics.shard(1).Counter(CounterId::kCondvarNotifies), 0u)
      << "nobody parked, so nobody should have been notified";
}

TEST_F(ParallelClusterTest, ShardRouterIdleWaitSpinsBeforeParkingAndCountsBoth) {
  ShardRouterConfig config;
  config.spin_min = 64;
  config.spin_max = 1024;
  ShardRouter router(1, config);
  MetricsEngine metrics(1);
  router.SetObservability(&metrics, nullptr);
  router.Attach(0, [](MachineId, PayloadRef) {});

  // Window expires empty: the full spin budget is spent, then a real park.
  router.IdleWait(0, std::chrono::milliseconds(1), [] { return false; });
  EXPECT_EQ(metrics.shard(0).Counter(CounterId::kSpinIters), 64u);
  EXPECT_EQ(metrics.shard(0).Counter(CounterId::kCondvarParks), 1u);
  EXPECT_EQ(metrics.shard(0).Counter(CounterId::kParksAvoided), 0u);

  // Work visible inside the window: the park (and its condvar round-trip)
  // is avoided.
  router.IdleWait(0, std::chrono::milliseconds(50), [] { return true; });
  EXPECT_EQ(metrics.shard(0).Counter(CounterId::kParksAvoided), 1u);
  EXPECT_EQ(metrics.shard(0).Counter(CounterId::kCondvarParks), 1u);
  EXPECT_FALSE(router.IsParked(0));
}

// ---------------------------------------------------------------------------
// ParallelCluster lifecycle: quiescence, Post, restart.
// ---------------------------------------------------------------------------

TEST_F(ParallelClusterTest, EmptyClusterIsImmediatelyQuiescent) {
  ParallelCluster cluster(ParallelClusterConfig{.machines = 4});
  EXPECT_TRUE(cluster.RunUntilQuiescent(std::chrono::milliseconds(2000)));
  cluster.Stop();
}

TEST_F(ParallelClusterTest, PostRunsOnShardThreadAndRestartWorks) {
  ParallelCluster cluster(ParallelClusterConfig{.machines = 2});
  auto sink = cluster.kernel(1).SpawnProcess("token_ring");
  ASSERT_TRUE(sink.ok());
  TokenRingConfig config;
  config.machines = 2;
  (void)cluster.kernel(1).FindProcess(sink->pid)->memory.WriteData(0, config.Encode());
  ASSERT_TRUE(cluster.RunUntilQuiescent());
  const std::int64_t before = cluster.TotalStat(stat::kMsgsDelivered);

  // Inject from shard 0's thread while the cluster is running.
  cluster.Post(0, [&cluster, addr = *sink] {
    cluster.kernel(0).SendFromKernel(addr, kTokenKick, MakeKickPayload(1, 0));
  });
  ASSERT_TRUE(cluster.RunUntilQuiescent());
  EXPECT_EQ(cluster.TotalStat(stat::kMsgsDelivered), before + 1);

  // Stop/Start: the same cluster keeps working across a full join cycle.
  cluster.Stop();
  cluster.Post(1, [&cluster, addr = *sink] {
    cluster.kernel(1).SendFromKernel(addr, kTokenKick, MakeKickPayload(1, 0));
  });
  ASSERT_TRUE(cluster.RunUntilQuiescent());
  EXPECT_EQ(cluster.TotalStat(stat::kMsgsDelivered), before + 2);
  cluster.Stop();
}

// ---------------------------------------------------------------------------
// Engine equivalence, parameterized over the Engine interface.
// ---------------------------------------------------------------------------

enum class EngineKind { kSequential, kParallel, kParallelSync };

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequential:
      return "Sequential";
    case EngineKind::kParallel:
      return "Parallel";
    case EngineKind::kParallelSync:
      return "ParallelSync";
  }
  return "?";
}

// One factory for all three engine variants.  `parallel` carries
// variant-specific knobs (mailbox capacity, link latencies) and is ignored by
// the sequential engine.
std::unique_ptr<Engine> MakeEngine(EngineKind kind, int machines,
                                   ParallelClusterConfig parallel = {}) {
  if (kind == EngineKind::kSequential) {
    return std::make_unique<Cluster>(ClusterConfig{.machines = machines});
  }
  parallel.machines = machines;
  parallel.sync.enabled = kind == EngineKind::kParallelSync;
  parallel.settle_timeout = std::chrono::milliseconds(60000);
  return std::make_unique<ParallelCluster>(parallel);
}

// The link a ring node holds to its successor, or nullptr.
const Link* LinkToNext(ProcessRecord* record, const ProcessId& next_pid) {
  if (record == nullptr) {
    return nullptr;
  }
  for (LinkId slot = 0; slot < 64; ++slot) {
    const Link* link = record->links.Get(slot);
    if (link != nullptr && link->address.pid == next_pid) {
      return link;
    }
  }
  return nullptr;
}

struct RingEndState {
  std::map<std::uint64_t, MachineId> host;         // keyed by pid key
  std::map<std::uint64_t, MachineId> link_target;  // node -> where its next-link points
  std::map<std::uint64_t, std::uint32_t> migrations;  // node -> chained hops done
  std::int64_t delivered = 0;
  std::int64_t bounced = 0;
  std::int64_t tokens_seen = 0;  // program-level exactly-once count
};

std::uint64_t PidKey(const ProcessId& pid) {
  return (static_cast<std::uint64_t>(pid.creating_machine) << 32) | pid.local_id;
}

RingEndState CaptureEndState(Engine& engine, const std::vector<TokenRing>& rings) {
  RingEndState state;
  for (const TokenRing& ring : rings) {
    for (std::size_t j = 0; j < ring.size(); ++j) {
      const ProcessId& pid = ring[j].pid;
      const ProcessId& next_pid = ring[(j + 1) % ring.size()].pid;
      state.host[PidKey(pid)] = engine.HostOf(pid);
      ProcessRecord* record = engine.FindProcessAnywhere(pid);
      const Link* link = LinkToNext(record, next_pid);
      state.link_target[PidKey(pid)] =
          link != nullptr ? link->address.last_known_machine : kNoMachine;
      if (record != nullptr) {
        if (auto* program = dynamic_cast<TokenRingProgram*>(record->program.get())) {
          state.tokens_seen += static_cast<std::int64_t>(program->tokens_seen());
          state.migrations[PidKey(pid)] = program->migrations_started();
        }
      }
    }
  }
  state.delivered = engine.TotalStat(stat::kMsgsDelivered);
  state.bounced = engine.TotalStat(stat::kMsgsBounced);
  return state;
}

// The one workload runner for every engine: stage, kick, settle, probe.  The
// probe rounds re-kick every node through Execute(0) so stale links advance a
// forwarding hop per round on all engines alike.
RingEndState RunWorkload(Engine& engine, const TokenRingSpec& spec, int probe_rounds,
                         std::vector<TokenRing>* rings_out = nullptr) {
  std::vector<TokenRing> rings = BuildTokenRings(engine, spec);
  EXPECT_FALSE(rings.empty());
  KickTokenRings(engine, rings, spec.tokens_per_node, spec.hops_per_token);
  EXPECT_TRUE(engine.RunUntilSettled(20'000'000).settled) << "workload did not settle";
  for (int round = 0; round < probe_rounds; ++round) {
    Engine* e = &engine;
    engine.Execute(0, [e, &rings, payload = MakeKickPayload(1, 0)] {
      for (const TokenRing& ring : rings) {
        for (const ProcessAddress& node : ring) {
          e->kernel(0).SendFromKernel(node, kTokenKick, payload);
        }
      }
    });
    EXPECT_TRUE(engine.RunUntilSettled(20'000'000).settled) << "probe round did not settle";
  }
  RingEndState state = CaptureEndState(engine, rings);
  if (rings_out != nullptr) {
    *rings_out = std::move(rings);
  }
  return state;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override { RegisterWorkloadPrograms(); }
};

INSTANTIATE_TEST_SUITE_P(Engines, EngineEquivalenceTest,
                         ::testing::Values(EngineKind::kSequential, EngineKind::kParallel,
                                           EngineKind::kParallelSync),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return std::string(EngineKindName(info.param));
                         });

TEST_P(EngineEquivalenceTest, StaticRingsMatchGroundTruth) {
  const int machines = 4;
  TokenRingSpec spec;
  spec.rings = 4;
  spec.nodes_per_ring = 6;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 50;

  std::unique_ptr<Engine> engine = MakeEngine(GetParam(), machines);
  std::vector<TokenRing> rings;
  const RingEndState state = RunWorkload(*engine, spec, /*probe_rounds=*/0, &rings);

  EXPECT_EQ(state.delivered, ExpectedRingDeliveries(spec));
  EXPECT_EQ(state.bounced, 0);
  // With no migrations the ground truth is the spawn layout itself: every
  // node stays home and every next-link still names the successor's spawn
  // machine.
  for (const TokenRing& ring : rings) {
    for (std::size_t j = 0; j < ring.size(); ++j) {
      const ProcessAddress& node = ring[j];
      const ProcessAddress& next = ring[(j + 1) % ring.size()];
      EXPECT_EQ(state.host.at(PidKey(node.pid)), node.last_known_machine);
      EXPECT_EQ(state.link_target.at(PidKey(node.pid)), next.last_known_machine);
    }
  }
}

TEST_P(EngineEquivalenceTest, ChainedMigrationsAndStaleLinksMatchGroundTruth) {
  const int machines = 4;
  TokenRingSpec spec;
  spec.rings = 3;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 40;
  spec.migrate_count = 3;
  spec.migrate_after_tokens = 2;
  // Each probe round advances a stale link at least one forwarding hop, so
  // migrate_count + 1 rounds guarantee convergence on every engine.
  const int probe_rounds = static_cast<int>(spec.migrate_count) + 1;

  std::unique_ptr<Engine> engine = MakeEngine(GetParam(), machines);
  std::vector<TokenRing> rings;
  const RingEndState state = RunWorkload(*engine, spec, probe_rounds, &rings);

  // msgs_delivered undercounts by a timing-dependent amount under migration
  // (held messages are consumed without a bump), so the exactly-once check
  // uses the program-level reception counter, which every engine must match.
  EXPECT_EQ(state.tokens_seen, ExpectedTokenReceptions(spec, probe_rounds));
  EXPECT_EQ(state.bounced, 0);

  // Ground truth: every node chained exactly migrate_count hops of +1 from
  // its spawn machine, and after the probe rounds each node's next-link has
  // converged on the successor's true host.
  for (const TokenRing& ring : rings) {
    for (std::size_t j = 0; j < ring.size(); ++j) {
      const ProcessAddress& node = ring[j];
      const ProcessAddress& next = ring[(j + 1) % ring.size()];
      const auto want_host = static_cast<MachineId>(
          (node.last_known_machine + spec.migrate_count) % machines);
      const auto want_target = static_cast<MachineId>(
          (next.last_known_machine + spec.migrate_count) % machines);
      EXPECT_EQ(state.host.at(PidKey(node.pid)), want_host) << "host diverged";
      EXPECT_EQ(state.migrations.at(PidKey(node.pid)), spec.migrate_count);
      EXPECT_EQ(state.link_target.at(PidKey(node.pid)), want_target);
    }
  }
}

// The pairwise check the suite is named for: all three engines must land on
// byte-identical location/link/counter end states for the same workload.
TEST_F(ParallelClusterTest, AllEnginesConvergeToIdenticalEndState) {
  const int machines = 4;
  TokenRingSpec spec;
  spec.rings = 3;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 40;
  spec.migrate_count = 2;
  spec.migrate_after_tokens = 2;
  const int probe_rounds = static_cast<int>(spec.migrate_count) + 1;

  RingEndState baseline;
  bool have_baseline = false;
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kParallel, EngineKind::kParallelSync}) {
    SCOPED_TRACE(EngineKindName(kind));
    std::unique_ptr<Engine> engine = MakeEngine(kind, machines);
    const RingEndState state = RunWorkload(*engine, spec, probe_rounds);
    if (!have_baseline) {
      baseline = state;
      have_baseline = true;
      continue;
    }
    EXPECT_EQ(state.host, baseline.host);
    EXPECT_EQ(state.link_target, baseline.link_target);
    EXPECT_EQ(state.migrations, baseline.migrations);
    EXPECT_EQ(state.tokens_seen, baseline.tokens_seen);
    EXPECT_EQ(state.bounced, baseline.bounced);
  }
}

// Cross-shard forwarding hammered mid-migration: many rings, every node
// migrating early, while tokens from every other node are still addressed to
// the pre-migration machines.  TSan runs this in CI; the assertions double as
// an exactly-once check under real concurrency.
TEST_F(ParallelClusterTest, StressForwardingDuringMigrationStorm) {
  const int machines = 8;
  TokenRingSpec spec;
  spec.rings = 8;
  spec.nodes_per_ring = 8;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 40;
  spec.migrate_count = 2;
  spec.migrate_after_tokens = 1;  // first token triggers the chain: maximum overlap

  std::unique_ptr<Engine> engine = MakeEngine(EngineKind::kParallel, machines);
  const RingEndState par = RunWorkload(*engine, spec, /*probe_rounds=*/0);
  EXPECT_EQ(par.tokens_seen, ExpectedTokenReceptions(spec));
  EXPECT_EQ(par.bounced, 0);
  for (const auto& [pid, host] : par.host) {
    EXPECT_NE(host, kNoMachine) << "a process vanished mid-storm";
  }
  for (const auto& [pid, count] : par.migrations) {
    EXPECT_EQ(count, spec.migrate_count) << "a migration chain stalled";
  }
}

// The same storm with migration deadlines armed, which forces conservative
// sync on: the acceptance bar for enabling wall-clock policies under the
// parallel engine.  Healthy migrations under load must never trip a watchdog,
// and the sync layer must hold exactly-once.  TSan runs this in CI.
TEST_F(ParallelClusterTest, StressMigrationStormWithDeadlinesArmed) {
  const int machines = 8;
  TokenRingSpec spec;
  spec.rings = 8;
  spec.nodes_per_ring = 8;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 40;
  spec.migrate_count = 2;
  spec.migrate_after_tokens = 1;

  ParallelClusterConfig config;
  config.kernel.migration_deadlines.offer_accept_us = 2'000'000;
  config.kernel.migration_deadlines.transfer_progress_us = 2'000'000;
  config.kernel.migration_deadlines.handoff_us = 2'000'000;
  std::unique_ptr<Engine> engine = MakeEngine(EngineKind::kParallel, machines, config);
  const RingEndState par = RunWorkload(*engine, spec, /*probe_rounds=*/0);
  EXPECT_EQ(par.tokens_seen, ExpectedTokenReceptions(spec));
  EXPECT_EQ(par.bounced, 0);
  EXPECT_EQ(engine->TotalStat(stat::kMigrationsTimedOut), 0)
      << "a deadline fired for a healthy migration under sync";
  for (const auto& [pid, count] : par.migrations) {
    EXPECT_EQ(count, spec.migrate_count) << "a migration chain stalled";
  }
}

// The shrink-mid-storm proof for adaptive lookahead: migration-free traffic
// runs first, so wide windows open and per-link estimates grow -- then the
// storm starts.  The moment a shard's kernel holds a migration offer it
// publishes tight, its learned lookahead collapses to the static minimum, and
// the coordinator falls back to strictly conservative bounds.  Frames
// timestamped inside the old wide windows must still land exactly once, no
// healthy migration may trip its watchdog, and any clamp must be accounted as
// wide-era residue, never as a conservative-sync violation.  TSan runs this
// in CI.
TEST_F(ParallelClusterTest, StressLookaheadShrinkMidStormKeepsExactlyOnce) {
  const int machines = 8;
  TokenRingSpec spec;
  spec.rings = 8;
  spec.nodes_per_ring = 8;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 40;
  spec.migrate_count = 2;
  spec.migrate_after_tokens = 4;  // a wide era runs before the first offer leaves

  ParallelClusterConfig config;
  config.kernel.migration_deadlines.offer_accept_us = 2'000'000;
  config.kernel.migration_deadlines.transfer_progress_us = 2'000'000;
  config.kernel.migration_deadlines.handoff_us = 2'000'000;
  std::unique_ptr<Engine> engine = MakeEngine(EngineKind::kParallelSync, machines, config);
  const RingEndState par = RunWorkload(*engine, spec, /*probe_rounds=*/0);
  EXPECT_EQ(par.tokens_seen, ExpectedTokenReceptions(spec));
  EXPECT_EQ(par.bounced, 0);
  EXPECT_EQ(engine->TotalStat(stat::kMigrationsTimedOut), 0)
      << "a deadline fired for a healthy migration under adaptive sync";
  for (const auto& [pid, count] : par.migrations) {
    EXPECT_EQ(count, spec.migrate_count) << "a migration chain stalled";
  }

  MetricsEngine* metrics = engine->metrics();
  ASSERT_NE(metrics, nullptr);
  std::uint64_t wide_windows = 0;
  std::uint64_t sync_clamped = 0;
  // All slots, including the coordinator's (the wide-window counter lives there).
  for (int m = 0; m < metrics->shards(); ++m) {
    wide_windows += metrics->shard(m).Counter(CounterId::kWideWindowsOpened);
    sync_clamped += metrics->shard(m).Counter(CounterId::kSyncFramesClamped);
  }
  EXPECT_GT(wide_windows, 0u) << "the pre-storm era should have widened windows";
  EXPECT_EQ(sync_clamped, 0u)
      << "an ever-wide run must route clamped arrivals to wide_frames_clamped";
}

// A deliberately tiny mailbox forces sustained backpressure (and possibly the
// cyclic-full escape hatch) through the full kernel path; delivery accounting
// must stay exact.
TEST_F(ParallelClusterTest, TinyMailboxBackpressureKeepsExactlyOnce) {
  const int machines = 2;
  TokenRingSpec spec;
  spec.rings = 2;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 4;
  spec.hops_per_token = 200;

  ParallelClusterConfig config;
  config.router.mailbox_capacity = 8;
  std::unique_ptr<Engine> engine = MakeEngine(EngineKind::kParallel, machines, config);
  const RingEndState par = RunWorkload(*engine, spec, /*probe_rounds=*/0);
  EXPECT_EQ(par.delivered, ExpectedRingDeliveries(spec));
  EXPECT_EQ(par.bounced, 0);
}

// Default-on batching and pooling must leave fingerprints in the metrics
// slabs, and -- the LBTS safety half of the batching contract -- a batched
// frame's per-frame timestamp must never admit a delivery into a shard's
// virtual past (the clamp counter is the tripwire for that).
TEST_F(ParallelClusterTest, BatchedSyncRunNeverClampsAndExportsHotPathCounters) {
  const int machines = 4;
  TokenRingSpec spec;
  spec.rings = 2;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 4;
  spec.hops_per_token = 100;

  std::unique_ptr<Engine> engine = MakeEngine(EngineKind::kParallelSync, machines);
  const RingEndState state = RunWorkload(*engine, spec, /*probe_rounds=*/0);
  EXPECT_EQ(state.tokens_seen, ExpectedTokenReceptions(spec));

  MetricsEngine* metrics = engine->metrics();
  ASSERT_NE(metrics, nullptr);
  std::uint64_t clamped = 0;
  std::uint64_t spin_iters = 0;
  std::uint64_t pool_traffic = 0;
  HistogramSnapshot batch;
  for (int m = 0; m < machines; ++m) {
    clamped += metrics->shard(m).Counter(CounterId::kSyncFramesClamped);
    spin_iters += metrics->shard(m).Counter(CounterId::kSpinIters);
    pool_traffic += metrics->shard(m).Counter(CounterId::kPoolHits) +
                    metrics->shard(m).Counter(CounterId::kPoolMisses);
    batch.Merge(metrics->shard(m).Histogram(HistogramId::kBatchSize));
  }
  EXPECT_EQ(clamped, 0u) << "a batched frame admitted a delivery into the past";
  EXPECT_GT(batch.count, 0u) << "batching default-on must observe batch sizes";
  EXPECT_GE(batch.sum, batch.count) << "every published batch carries at least one frame";
  EXPECT_GT(pool_traffic, 0u) << "payload pooling default-on must count acquisitions";
  // Spin-then-park is load-dependent (a loaded 1-core runner may never catch
  // an empty window), so only sanity-check the counter is readable.
  (void)spin_iters;
}

}  // namespace
}  // namespace demos
