// Tests for the parallel execution engine (src/run): the lock-free mailbox,
// the ShardRouter transport, ParallelCluster quiescence, and -- the point of
// the whole engine -- sequential/parallel equivalence: the same token-ring
// workload with chained migrations and stale-link traffic must converge to
// identical process locations, link tables, and delivery counts on both the
// deterministic Cluster and the threaded ParallelCluster.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/stats.h"
#include "src/kernel/cluster.h"
#include "src/run/mpsc_queue.h"
#include "src/run/parallel_cluster.h"
#include "src/run/shard_router.h"
#include "src/workload/programs.h"
#include "src/workload/token_ring_harness.h"

namespace demos {
namespace {

class ParallelClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterWorkloadPrograms(); }
};

// ---------------------------------------------------------------------------
// BoundedMpscQueue units.
// ---------------------------------------------------------------------------

TEST_F(ParallelClusterTest, MpscQueueFifoAndCapacity) {
  BoundedMpscQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_TRUE(queue.Empty());

  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // untouched on failure

  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.TryPop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.TryPop(out));
  EXPECT_TRUE(queue.Empty());

  // Wrap-around after the ring has gone full once.
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 3; ++i) {
      int v = lap * 10 + i;
      ASSERT_TRUE(queue.TryPush(v));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(queue.TryPop(out));
      EXPECT_EQ(out, lap * 10 + i);
    }
  }
}

TEST_F(ParallelClusterTest, MpscQueueMovesOnlyOnSuccess) {
  BoundedMpscQueue<std::unique_ptr<int>> queue(2);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  ASSERT_TRUE(queue.TryPush(a));
  ASSERT_TRUE(queue.TryPush(b));
  EXPECT_EQ(a, nullptr);
  EXPECT_FALSE(queue.TryPush(c));
  ASSERT_NE(c, nullptr);  // a failed push must not consume the item
  EXPECT_EQ(*c, 3);

  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(*out, 1);
  ASSERT_TRUE(queue.TryPush(c));
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(*out, 2);
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(*out, 3);
}

TEST_F(ParallelClusterTest, MpscQueueConcurrentProducersKeepPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 4000;
  BoundedMpscQueue<std::pair<int, int>> queue(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::pair<int, int> item{p, i};
        while (!queue.TryPush(item)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    std::pair<int, int> item;
    if (!queue.TryPop(item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(item.second, next_expected[item.first])
        << "producer " << item.first << " reordered";
    ++next_expected[item.first];
    ++received;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_TRUE(queue.Empty());
}

// ---------------------------------------------------------------------------
// ShardRouter: backpressure and delivery accounting.
// ---------------------------------------------------------------------------

TEST_F(ParallelClusterTest, ShardRouterBackpressureBlocksWithoutLosingOrOrdering) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 3000;
  ShardRouterConfig config;
  config.mailbox_capacity = 8;  // tiny: every producer slams into backpressure
  ShardRouter router(kProducers + 1, config);

  const MachineId sink = 0;
  std::map<std::uint32_t, std::uint32_t> next_seq;
  std::uint64_t received = 0;
  router.Attach(sink, [&](MachineId /*src*/, PayloadRef payload) {
    ByteReader r(payload);
    const std::uint32_t producer = r.U32();
    const std::uint32_t seq = r.U32();
    EXPECT_EQ(seq, next_seq[producer]) << "producer " << producer << " reordered";
    next_seq[producer] = seq + 1;
    ++received;
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    // Each producer thread sends as shard p+1, which it trivially owns.
    producers.emplace_back([&router, p] {
      const auto src = static_cast<MachineId>(p + 1);
      for (int i = 0; i < kPerProducer; ++i) {
        ByteWriter w;
        w.U32(static_cast<std::uint32_t>(p));
        w.U32(static_cast<std::uint32_t>(i));
        router.Send(src, sink, w.Take());
      }
    });
  }

  const std::uint64_t want = static_cast<std::uint64_t>(kProducers) * kPerProducer;
  while (received < want) {
    if (router.Drain(sink, 64) == 0) {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(router.sent(), want);
  EXPECT_EQ(router.consumed(), want);
  EXPECT_GT(router.backpressure_hits(), 0u);
  EXPECT_FALSE(router.HasMail(sink));
}

// ---------------------------------------------------------------------------
// ParallelCluster lifecycle: quiescence, Post, restart.
// ---------------------------------------------------------------------------

TEST_F(ParallelClusterTest, EmptyClusterIsImmediatelyQuiescent) {
  ParallelCluster cluster(ParallelClusterConfig{.machines = 4});
  EXPECT_TRUE(cluster.RunUntilQuiescent(std::chrono::milliseconds(2000)));
  cluster.Stop();
}

TEST_F(ParallelClusterTest, PostRunsOnShardThreadAndRestartWorks) {
  ParallelCluster cluster(ParallelClusterConfig{.machines = 2});
  auto sink = cluster.kernel(1).SpawnProcess("token_ring");
  ASSERT_TRUE(sink.ok());
  TokenRingConfig config;
  config.machines = 2;
  (void)cluster.kernel(1).FindProcess(sink->pid)->memory.WriteData(0, config.Encode());
  ASSERT_TRUE(cluster.RunUntilQuiescent());
  const std::int64_t before = cluster.TotalStat(stat::kMsgsDelivered);

  // Inject from shard 0's thread while the cluster is running.
  cluster.Post(0, [&cluster, addr = *sink] {
    cluster.kernel(0).SendFromKernel(addr, kTokenKick, MakeKickPayload(1, 0));
  });
  ASSERT_TRUE(cluster.RunUntilQuiescent());
  EXPECT_EQ(cluster.TotalStat(stat::kMsgsDelivered), before + 1);

  // Stop/Start: the same cluster keeps working across a full join cycle.
  cluster.Stop();
  cluster.Post(1, [&cluster, addr = *sink] {
    cluster.kernel(1).SendFromKernel(addr, kTokenKick, MakeKickPayload(1, 0));
  });
  ASSERT_TRUE(cluster.RunUntilQuiescent());
  EXPECT_EQ(cluster.TotalStat(stat::kMsgsDelivered), before + 2);
  cluster.Stop();
}

// ---------------------------------------------------------------------------
// Sequential/parallel equivalence.
// ---------------------------------------------------------------------------

// The link a ring node holds to its successor, or nullptr.
const Link* LinkToNext(ProcessRecord* record, const ProcessId& next_pid) {
  if (record == nullptr) {
    return nullptr;
  }
  for (LinkId slot = 0; slot < 64; ++slot) {
    const Link* link = record->links.Get(slot);
    if (link != nullptr && link->address.pid == next_pid) {
      return link;
    }
  }
  return nullptr;
}

struct RingEndState {
  std::map<std::uint64_t, MachineId> host;         // keyed by pid key
  std::map<std::uint64_t, MachineId> link_target;  // node -> where its next-link points
  std::map<std::uint64_t, std::uint32_t> migrations;  // node -> chained hops done
  std::int64_t delivered = 0;
  std::int64_t bounced = 0;
  std::int64_t tokens_seen = 0;  // program-level exactly-once count
};

std::uint64_t PidKey(const ProcessId& pid) {
  return (static_cast<std::uint64_t>(pid.creating_machine) << 32) | pid.local_id;
}

template <typename ClusterT>
RingEndState CaptureEndState(ClusterT& cluster, const std::vector<TokenRing>& rings) {
  RingEndState state;
  for (const TokenRing& ring : rings) {
    for (std::size_t j = 0; j < ring.size(); ++j) {
      const ProcessId& pid = ring[j].pid;
      const ProcessId& next_pid = ring[(j + 1) % ring.size()].pid;
      state.host[PidKey(pid)] = cluster.HostOf(pid);
      ProcessRecord* record = cluster.FindProcessAnywhere(pid);
      const Link* link = LinkToNext(record, next_pid);
      state.link_target[PidKey(pid)] =
          link != nullptr ? link->address.last_known_machine : kNoMachine;
      if (record != nullptr) {
        if (auto* program = dynamic_cast<TokenRingProgram*>(record->program.get())) {
          state.tokens_seen += static_cast<std::int64_t>(program->tokens_seen());
          state.migrations[PidKey(pid)] = program->migrations_started();
        }
      }
    }
  }
  state.delivered = cluster.TotalStat(stat::kMsgsDelivered);
  state.bounced = cluster.TotalStat(stat::kMsgsBounced);
  return state;
}

// Run the shared workload on the deterministic engine.
RingEndState RunSequential(int machines, const TokenRingSpec& spec, int probe_rounds) {
  Cluster cluster(ClusterConfig{.machines = machines});
  std::vector<TokenRing> rings = BuildTokenRings(cluster, spec);
  EXPECT_FALSE(rings.empty());
  KickTokenRings(cluster, rings, spec.tokens_per_node, spec.hops_per_token);
  EXPECT_LT(cluster.RunUntilIdle(20'000'000), 20'000'000u) << "workload did not terminate";
  for (int round = 0; round < probe_rounds; ++round) {
    KickTokenRings(cluster, rings, 1, 0);
    cluster.RunUntilIdle();
  }
  return CaptureEndState(cluster, rings);
}

// Run the identical workload on the parallel engine.
RingEndState RunParallel(int machines, const TokenRingSpec& spec, int probe_rounds,
                         ParallelClusterConfig config = {}) {
  config.machines = machines;
  ParallelCluster cluster(config);
  std::vector<TokenRing> rings = BuildTokenRings(cluster, spec);
  EXPECT_FALSE(rings.empty());
  KickTokenRings(cluster, rings, spec.tokens_per_node, spec.hops_per_token);
  EXPECT_TRUE(cluster.RunUntilQuiescent(std::chrono::milliseconds(60000)));
  for (int round = 0; round < probe_rounds; ++round) {
    const Bytes payload = MakeKickPayload(1, 0);
    cluster.Post(0, [&cluster, &rings, payload] {
      for (const TokenRing& ring : rings) {
        for (const ProcessAddress& node : ring) {
          cluster.kernel(0).SendFromKernel(node, kTokenKick, payload);
        }
      }
    });
    EXPECT_TRUE(cluster.RunUntilQuiescent(std::chrono::milliseconds(60000)));
  }
  RingEndState state = CaptureEndState(cluster, rings);
  cluster.Stop();
  return state;
}

TEST_F(ParallelClusterTest, EquivalenceStaticRings) {
  const int machines = 4;
  TokenRingSpec spec;
  spec.rings = 4;
  spec.nodes_per_ring = 6;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 50;

  RingEndState seq = RunSequential(machines, spec, /*probe_rounds=*/0);
  RingEndState par = RunParallel(machines, spec, /*probe_rounds=*/0);

  EXPECT_EQ(seq.delivered, ExpectedRingDeliveries(spec));
  EXPECT_EQ(par.delivered, ExpectedRingDeliveries(spec));
  EXPECT_EQ(seq.bounced, 0);
  EXPECT_EQ(par.bounced, 0);
  EXPECT_EQ(seq.host, par.host);
  EXPECT_EQ(seq.link_target, par.link_target);
}

TEST_F(ParallelClusterTest, EquivalenceChainedMigrationsAndStaleLinks) {
  const int machines = 4;
  TokenRingSpec spec;
  spec.rings = 3;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 40;
  spec.migrate_count = 3;
  spec.migrate_after_tokens = 2;
  // Each probe round advances a stale link at least one forwarding hop, so
  // migrate_count + 1 rounds guarantee convergence on both engines.
  const int probe_rounds = static_cast<int>(spec.migrate_count) + 1;

  RingEndState seq = RunSequential(machines, spec, probe_rounds);
  RingEndState par = RunParallel(machines, spec, probe_rounds);

  // msgs_delivered undercounts by a timing-dependent amount under migration
  // (held messages are consumed without a bump), so the exactly-once check
  // uses the program-level reception counter, which both engines must match.
  const std::int64_t expected = ExpectedTokenReceptions(spec, probe_rounds);
  EXPECT_EQ(seq.tokens_seen, expected);
  EXPECT_EQ(par.tokens_seen, expected);
  EXPECT_EQ(seq.bounced, 0);
  EXPECT_EQ(par.bounced, 0);

  // Ground truth: every node chained exactly migrate_count hops of +1.
  TokenRingSpec static_spec = spec;
  Cluster reference(ClusterConfig{.machines = machines});
  std::vector<TokenRing> layout = BuildTokenRings(reference, static_spec);
  for (const TokenRing& ring : layout) {
    for (std::size_t j = 0; j < ring.size(); ++j) {
      const ProcessAddress& node = ring[j];
      const auto want_host = static_cast<MachineId>(
          (node.last_known_machine + spec.migrate_count) % machines);
      EXPECT_EQ(seq.host.at(PidKey(node.pid)), want_host) << "sequential host diverged";
      EXPECT_EQ(par.host.at(PidKey(node.pid)), want_host) << "parallel host diverged";
      EXPECT_EQ(seq.migrations.at(PidKey(node.pid)), spec.migrate_count);
      EXPECT_EQ(par.migrations.at(PidKey(node.pid)), spec.migrate_count);
      // After the probe rounds, each node's next-link must have converged on
      // the successor's true host (identical in both engines).
      const ProcessAddress& next = ring[(j + 1) % ring.size()];
      const auto want_target = static_cast<MachineId>(
          (next.last_known_machine + spec.migrate_count) % machines);
      EXPECT_EQ(seq.link_target.at(PidKey(node.pid)), want_target);
      EXPECT_EQ(par.link_target.at(PidKey(node.pid)), want_target);
    }
  }
}

// Cross-shard forwarding hammered mid-migration: many rings, every node
// migrating early, while tokens from every other node are still addressed to
// the pre-migration machines.  TSan runs this in CI; the assertions double as
// an exactly-once check under real concurrency.
TEST_F(ParallelClusterTest, StressForwardingDuringMigrationStorm) {
  const int machines = 8;
  TokenRingSpec spec;
  spec.rings = 8;
  spec.nodes_per_ring = 8;
  spec.tokens_per_node = 2;
  spec.hops_per_token = 40;
  spec.migrate_count = 2;
  spec.migrate_after_tokens = 1;  // first token triggers the chain: maximum overlap

  RingEndState par = RunParallel(machines, spec, /*probe_rounds=*/0);
  EXPECT_EQ(par.tokens_seen, ExpectedTokenReceptions(spec));
  EXPECT_EQ(par.bounced, 0);
  for (const auto& [pid, host] : par.host) {
    EXPECT_NE(host, kNoMachine) << "a process vanished mid-storm";
  }
  for (const auto& [pid, count] : par.migrations) {
    EXPECT_EQ(count, spec.migrate_count) << "a migration chain stalled";
  }
}

// A deliberately tiny mailbox forces sustained backpressure (and possibly the
// cyclic-full escape hatch) through the full kernel path; delivery accounting
// must stay exact.
TEST_F(ParallelClusterTest, TinyMailboxBackpressureKeepsExactlyOnce) {
  const int machines = 2;
  TokenRingSpec spec;
  spec.rings = 2;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 4;
  spec.hops_per_token = 200;

  ParallelClusterConfig config;
  config.router.mailbox_capacity = 8;
  RingEndState par = RunParallel(machines, spec, /*probe_rounds=*/0, config);
  EXPECT_EQ(par.delivered, ExpectedRingDeliveries(spec));
  EXPECT_EQ(par.bounced, 0);
}

}  // namespace
}  // namespace demos
