// Kernel behaviour tests: spawning, messaging, scheduling, timers, process
// control, and kernel services -- everything in Sec. 2 short of migration.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace demos {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    GlobalCapture().clear();
  }

  Cluster MakeCluster(int machines = 3) {
    ClusterConfig config;
    config.machines = machines;
    return Cluster(config);
  }

  // Spawn a tagged sink and return a (address, link) pair for replies.
  ProcessAddress SpawnSink(Cluster& cluster, MachineId m, std::uint64_t tag) {
    auto addr = cluster.kernel(m).SpawnProcess("sink");
    EXPECT_TRUE(addr.ok());
    cluster.RunUntilIdle();
    testutil::TagProcess(cluster, *addr, tag);
    return *addr;
  }

  Link LinkTo(const ProcessAddress& addr, std::uint8_t flags = kLinkNone) {
    Link l;
    l.address = addr;
    l.flags = flags;
    return l;
  }
};

TEST_F(KernelTest, SpawnCreatesWaitingProcess) {
  Cluster cluster = MakeCluster();
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->last_known_machine, 0);
  EXPECT_EQ(addr->pid.creating_machine, 0);
  EXPECT_NE(addr->pid.local_id, 0u);  // 0 is the kernel pseudo-process
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(0).FindProcess(addr->pid);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, ExecState::kWaiting);
  EXPECT_TRUE(record->started);
}

TEST_F(KernelTest, SpawnUnknownProgramFails) {
  Cluster cluster = MakeCluster();
  auto addr = cluster.kernel(0).SpawnProcess("no_such_program");
  EXPECT_FALSE(addr.ok());
  EXPECT_EQ(addr.status().code(), StatusCode::kNotFound);
}

TEST_F(KernelTest, SpawnRespectsMemoryLimit) {
  ClusterConfig config;
  config.machines = 1;
  config.kernel.memory_limit_bytes = 10 * 1024;
  Cluster cluster(config);
  testutil::RegisterPrograms();
  auto first = cluster.kernel(0).SpawnProcess("idle", 4096, 2048, 1024);
  EXPECT_TRUE(first.ok());
  auto second = cluster.kernel(0).SpawnProcess("idle", 4096, 2048, 1024);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kExhausted);
}

TEST_F(KernelTest, PidsAreUniquePerMachine) {
  Cluster cluster = MakeCluster();
  auto a = cluster.kernel(0).SpawnProcess("idle");
  auto b = cluster.kernel(0).SpawnProcess("idle");
  auto c = cluster.kernel(1).SpawnProcess("idle");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->pid, b->pid);
  EXPECT_NE(a->pid, c->pid);
  EXPECT_EQ(c->pid.creating_machine, 1);
}

TEST_F(KernelTest, CrossMachinePingPong) {
  Cluster cluster = MakeCluster();
  ProcessAddress sink = SpawnSink(cluster, 0, 1);
  auto echo = cluster.kernel(1).SpawnProcess("echo");
  ASSERT_TRUE(echo.ok());
  cluster.RunUntilIdle();

  cluster.kernel(0).SendFromKernel(*echo, kPing, {5, 6, 7}, {LinkTo(sink, kLinkReply)});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, kPong);
  EXPECT_EQ(captured[0].payload, (Bytes{5, 6, 7}));
  EXPECT_EQ(captured[0].sender.pid, echo->pid);
}

TEST_F(KernelTest, LocalDeliveryWorksToo) {
  Cluster cluster = MakeCluster(1);
  ProcessAddress sink = SpawnSink(cluster, 0, 2);
  auto echo = cluster.kernel(0).SpawnProcess("echo");
  ASSERT_TRUE(echo.ok());
  cluster.RunUntilIdle();
  cluster.kernel(0).SendFromKernel(*echo, kPing, {1}, {LinkTo(sink, kLinkReply)});
  cluster.RunUntilIdle();
  EXPECT_EQ(testutil::CapturedFor(2).size(), 1u);
}

TEST_F(KernelTest, MessagesToOneProcessAreDeliveredInOrder) {
  Cluster cluster = MakeCluster(2);
  ProcessAddress sink = SpawnSink(cluster, 1, 3);
  for (std::uint8_t i = 0; i < 20; ++i) {
    cluster.kernel(0).SendFromKernel(sink, kNote, {i});
  }
  cluster.RunUntilIdle();
  auto captured = testutil::CapturedFor(3);
  ASSERT_EQ(captured.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) {
    EXPECT_EQ(captured[i].payload[0], i);
  }
}

TEST_F(KernelTest, CounterAccumulatesAcrossMessages) {
  Cluster cluster = MakeCluster(2);
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  for (int i = 0; i < 5; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(0).FindProcess(counter->pid);
  ASSERT_NE(record, nullptr);
  ByteReader r(record->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 5u);
  EXPECT_EQ(record->messages_handled, 5u);
}

TEST_F(KernelTest, SuspendHoldsMessagesResumeDeliversThem) {
  Cluster cluster = MakeCluster(2);
  ProcessAddress sink = SpawnSink(cluster, 0, 4);

  cluster.kernel(1).SendFromKernel(sink, MsgType::kSuspendProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(0).FindProcess(sink.pid);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, ExecState::kSuspended);

  cluster.kernel(1).SendFromKernel(sink, kNote, {1});
  cluster.RunUntilIdle();
  EXPECT_TRUE(testutil::CapturedFor(4).empty());
  EXPECT_EQ(record->queue.size(), 1u);

  cluster.kernel(1).SendFromKernel(sink, MsgType::kResumeProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  EXPECT_EQ(testutil::CapturedFor(4).size(), 1u);
  EXPECT_EQ(record->state, ExecState::kWaiting);
}

TEST_F(KernelTest, KillRemovesProcess) {
  Cluster cluster = MakeCluster(2);
  auto victim = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(victim.ok());
  cluster.RunUntilIdle();
  cluster.kernel(1).SendFromKernel(*victim, MsgType::kKillProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(0).FindProcess(victim->pid), nullptr);
  EXPECT_EQ(cluster.kernel(0).process_table().FindEntry(victim->pid), nullptr);
}

TEST_F(KernelTest, MessageToDeadProcessBouncesToSenderProcess) {
  Cluster cluster = MakeCluster(2);
  ProcessAddress sink = SpawnSink(cluster, 0, 5);
  auto victim = cluster.kernel(1).SpawnProcess("idle");
  ASSERT_TRUE(victim.ok());
  cluster.RunUntilIdle();
  cluster.kernel(0).SendFromKernel(*victim, MsgType::kKillProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();

  // A message "from" the sink to the dead process should produce a
  // NOT_DELIVERABLE notification back to the sink.
  Message msg;
  msg.sender = sink;
  msg.receiver = *victim;
  msg.type = kNote;
  cluster.kernel(0).Transmit(std::move(msg));
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(5);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, MsgType::kNotDeliverable);
}

TEST_F(KernelTest, TimerFiresOnce) {
  Cluster cluster = MakeCluster(1);
  auto echo = cluster.kernel(0).SpawnProcess("echo");
  ASSERT_TRUE(echo.ok());
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(0).FindProcess(echo->pid);
  ASSERT_NE(record, nullptr);

  KernelContext ctx(&cluster.kernel(0), record);
  ctx.SetTimer(1000, 42);
  EXPECT_EQ(record->timers.size(), 1u);
  cluster.RunUntilIdle();
  EXPECT_TRUE(record->timers.empty());
  EXPECT_GE(cluster.queue().Now(), 1000u);
}

TEST_F(KernelTest, CreateProcessServiceRepliesWithLink) {
  Cluster cluster = MakeCluster(2);
  ProcessAddress sink = SpawnSink(cluster, 0, 6);

  ByteWriter w;
  w.Str("idle");
  w.U32(1024);
  w.U32(512);
  w.U32(256);
  cluster.kernel(0).SendFromKernel(KernelAddress(1), MsgType::kCreateProcess, w.Take(),
                                   {LinkTo(sink, kLinkReply)});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(6);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, MsgType::kCreateProcessReply);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(r.U64(), 0u);  // no cookie supplied
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  ProcessAddress created = r.Address();
  EXPECT_EQ(created.last_known_machine, 1);
  EXPECT_NE(cluster.kernel(1).FindProcess(created.pid), nullptr);
}

TEST_F(KernelTest, CreateProcessServiceReportsUnknownProgram) {
  Cluster cluster = MakeCluster(2);
  ProcessAddress sink = SpawnSink(cluster, 0, 7);
  ByteWriter w;
  w.Str("missing_program");
  w.U32(0);
  w.U32(0);
  w.U32(0);
  cluster.kernel(0).SendFromKernel(KernelAddress(1), MsgType::kCreateProcess, w.Take(),
                                   {LinkTo(sink, kLinkReply)});
  cluster.RunUntilIdle();
  auto captured = testutil::CapturedFor(7);
  ASSERT_EQ(captured.size(), 1u);
  ByteReader r(captured[0].payload);
  (void)r.U64();  // cookie echo
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kNotFound);
}

TEST_F(KernelTest, LoadReportsArrive) {
  Cluster cluster = MakeCluster(2);
  ProcessAddress sink = SpawnSink(cluster, 0, 8);
  cluster.kernel(1).EnableLoadReports(sink, 10'000);
  cluster.RunFor(35'000);
  cluster.RunUntilIdle();
  auto captured = testutil::CapturedFor(8);
  ASSERT_GE(captured.size(), 3u);
  EXPECT_EQ(captured[0].type, MsgType::kLoadReport);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(r.U16(), 1);  // reporter machine
}

TEST_F(KernelTest, CpuAccountingAdvances) {
  Cluster cluster = MakeCluster(1);
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  const std::uint64_t before = cluster.kernel(0).cpu_busy_us();
  for (int i = 0; i < 10; ++i) {
    cluster.kernel(0).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();
  EXPECT_GT(cluster.kernel(0).cpu_busy_us(), before);
  ProcessRecord* record = cluster.kernel(0).FindProcess(counter->pid);
  EXPECT_GT(record->cpu_used_us, 0u);
}

TEST_F(KernelTest, StatsCountMessages) {
  Cluster cluster = MakeCluster(2);
  ProcessAddress sink = SpawnSink(cluster, 1, 9);
  const std::int64_t sent_before = cluster.kernel(0).stats().Get(stat::kMsgsSent);
  cluster.kernel(0).SendFromKernel(sink, kNote, {1});
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kMsgsSent), sent_before + 1);
  EXPECT_GE(cluster.kernel(1).stats().Get(stat::kMsgsDelivered), 1);
}

}  // namespace
}  // namespace demos
