// Forwarding-address and link-update tests (Sec. 4-5), including the
// return-to-sender baseline and the forwarding-address GC extension.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace demos {
namespace {

class ForwardingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    GlobalCapture().clear();
  }

  // Spawn a relay on `rm` holding (in table slot 0) a link to `target`, and
  // a counter on m0 the relay can be pointed at.
  struct RelaySetup {
    ProcessAddress relay;
    ProcessAddress counter;
  };

  RelaySetup MakeRelayAndCounter(Cluster& cluster, MachineId relay_machine,
                                 MachineId counter_machine) {
    auto relay = cluster.kernel(relay_machine).SpawnProcess("relay");
    auto counter = cluster.kernel(counter_machine).SpawnProcess("counter");
    EXPECT_TRUE(relay.ok() && counter.ok());
    cluster.RunUntilIdle();
    Link to_counter;
    to_counter.address = *counter;
    cluster.kernel(relay_machine).FindProcess(relay->pid)->links.Insert(to_counter);
    return {*relay, *counter};
  }

  void TellRelayToSend(Cluster& cluster, const ProcessAddress& relay) {
    ByteWriter w;
    w.U32(0);  // link table slot
    w.U16(static_cast<std::uint16_t>(kIncrement));
    w.Blob({});
    cluster.kernel(relay.last_known_machine)
        .SendFromKernel(relay, kSendViaTable, w.Take());
  }

  std::uint64_t CounterValue(Cluster& cluster, const ProcessId& pid) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    EXPECT_NE(record, nullptr);
    ByteReader r(record->memory.ReadData(0, 8));
    return r.U64();
  }
};

TEST_F(ForwardingTest, StaleLinkStillDelivers) {
  Cluster cluster(ClusterConfig{.machines = 3});
  RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);

  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 1u);
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kMsgsForwarded), 1);
}

TEST_F(ForwardingTest, EachForwardGeneratesTwoExtraMessages) {
  // Sec. 6: "Each message that goes through a forwarding address generates
  // two additional messages": the re-sent message and the link update.
  Cluster cluster(ClusterConfig{.machines = 3});
  RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);

  const std::int64_t sent_before = cluster.TotalStat(stat::kMsgsSent);
  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  const std::int64_t extra = cluster.TotalStat(stat::kMsgsSent) - sent_before;
  // 1 instruction to the relay + 1 send over the stale link + 1 forward +
  // 1 link update = 4; the paper's "two additional messages" are the forward
  // and the link update.  Reclamation adds a fifth: the sender's kernel acks
  // the link update so the forwarder can retire it from the record's
  // unresolved-peer set.
  EXPECT_EQ(extra, 5);
  EXPECT_EQ(cluster.TotalStat(stat::kLinkUpdateAcks), 1);
  EXPECT_EQ(cluster.TotalStat(stat::kLinkUpdateMsgs), 1);
}

TEST_F(ForwardingTest, LinkIsUpdatedAfterFirstForward) {
  // Sec. 6: "Typically, the link is updated after the first message."
  Cluster cluster(ClusterConfig{.machines = 3});
  RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);

  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();

  const Link* held = cluster.kernel(2).FindProcess(setup.relay.pid)->links.Get(0);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->address.last_known_machine, 1);  // patched by kLinkUpdate
  EXPECT_EQ(held->address.pid, setup.counter.pid);

  // Second message goes direct: no further forwarding.
  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kMsgsForwarded), 1);
  EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 2u);
}

TEST_F(ForwardingTest, AllMatchingLinksArePatchedAtOnce) {
  // "All links in the sending process's link table that point to the migrated
  // process are then updated" (Sec. 5) -- including duplicates.
  Cluster cluster(ClusterConfig{.machines = 3});
  RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
  // Two more duplicate links to the same counter.
  Link dup;
  dup.address = setup.counter;
  ProcessRecord* relay_rec = cluster.kernel(2).FindProcess(setup.relay.pid);
  relay_rec->links.Insert(dup);
  relay_rec->links.Insert(dup);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);

  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.TotalStat(stat::kLinksPatched), 3);
  for (LinkId id = 0; id < 3; ++id) {
    EXPECT_EQ(relay_rec->links.Get(id)->address.last_known_machine, 1);
  }
}

TEST_F(ForwardingTest, WithoutLinkUpdateEveryMessageForwards) {
  // Ablation: the E5/E6 "no update" arm.
  ClusterConfig config;
  config.machines = 3;
  config.kernel.link_update_enabled = false;
  Cluster cluster(config);
  RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);

  for (int i = 0; i < 5; ++i) {
    TellRelayToSend(cluster, setup.relay);
    cluster.RunUntilIdle();
  }
  EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 5u);
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kMsgsForwarded), 5);
  EXPECT_EQ(cluster.TotalStat(stat::kLinkUpdateMsgs), 0);
}

TEST_F(ForwardingTest, ChainedForwardingConvergesToDirect) {
  Cluster cluster(ClusterConfig{.machines = 4});
  RelaySetup setup = MakeRelayAndCounter(cluster, 3, 0);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 1, 2);

  // First send: hits m0's forwarding address, then m1's, reaching m2.
  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 1u);
  const std::int64_t forwards_first = cluster.TotalStat(stat::kMsgsForwarded);
  EXPECT_EQ(forwards_first, 2);

  // The relay's link was patched (one or two update steps, depending on
  // arrival order); after at most one more send everything goes direct.
  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 3u);
  const Link* held = cluster.kernel(3).FindProcess(setup.relay.pid)->links.Get(0);
  EXPECT_EQ(held->address.last_known_machine, 2);
  // At most one of the two later sends needed another forward; the last one
  // was direct.
  EXPECT_LE(cluster.TotalStat(stat::kMsgsForwarded), forwards_first + 1);
}

TEST_F(ForwardingTest, ForwardingAddressIsEightBytesOfState) {
  // Sec. 4: "In the current implementation, it uses 8 bytes of storage."
  // The degenerate record stores one machine id; its wire representation (a
  // process address) is 8 bytes.  We check the table entry is degenerate.
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);
  const auto* entry = cluster.kernel(0).process_table().FindEntry(addr->pid);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->IsForwarding());
  EXPECT_EQ(entry->process, nullptr);  // no process state retained
  EXPECT_EQ(cluster.kernel(0).process_table().ForwardingAddressCount(), 1u);
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kForwardingAddresses), 1);
}

TEST_F(ForwardingTest, DeliverToKernelControlFollowsForwarding) {
  // Sec. 2.2: DELIVERTOKERNEL lets the system address control functions "to a
  // process without worrying about which processor the process is on".
  Cluster cluster(ClusterConfig{.machines = 3});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);

  // Suspend via the OLD address.
  cluster.kernel(2).SendFromKernel(ProcessAddress{0, counter->pid}, MsgType::kSuspendProcess,
                                   {}, {}, kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(1).FindProcess(counter->pid)->state, ExecState::kSuspended);
}

TEST_F(ForwardingTest, MigrateRequestFollowsForwarding) {
  // Asking the old home to migrate a process that already left: the request
  // chases the process and migrates it from its current machine.
  Cluster cluster(ClusterConfig{.machines = 3});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);

  ASSERT_TRUE(
      cluster.kernel(0).StartMigration(addr->pid, 2, cluster.kernel(0).kernel_address()).ok());
  cluster.RunUntilIdle();
  EXPECT_NE(cluster.kernel(2).FindProcess(addr->pid), nullptr);
  // And m1 now forwards to m2.
  const auto* entry = cluster.kernel(1).process_table().FindEntry(addr->pid);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->IsForwarding());
  EXPECT_EQ(entry->forward_to, 2);
}

TEST_F(ForwardingTest, GcOnDeathClearsForwardingAddresses) {
  // Sec. 4 future work: remove forwarding addresses "when the process dies
  // ... by means of pointers backwards along the path of migration".
  ClusterConfig config;
  config.machines = 3;
  config.kernel.forwarding_gc = KernelConfig::ForwardingGc::kOnProcessDeath;
  Cluster cluster(config);
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);
  testutil::MigrateAndSettle(cluster, addr->pid, 1, 2);
  EXPECT_EQ(cluster.kernel(0).process_table().ForwardingAddressCount(), 1u);
  EXPECT_EQ(cluster.kernel(1).process_table().ForwardingAddressCount(), 1u);

  cluster.kernel(2).SendFromKernel(ProcessAddress{2, addr->pid}, MsgType::kKillProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(0).process_table().ForwardingAddressCount(), 0u);
  EXPECT_EQ(cluster.kernel(1).process_table().ForwardingAddressCount(), 0u);
  EXPECT_EQ(cluster.TotalStat("forwarding_cleared"), 2);
}

TEST_F(ForwardingTest, KeepForeverRetainsForwardingAddresses) {
  // The paper's actual implementation never removed them.
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);
  cluster.kernel(1).SendFromKernel(ProcessAddress{1, addr->pid}, MsgType::kKillProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.kernel(0).process_table().ForwardingAddressCount(), 1u);
}

// ---------------------------------------------------------------------------
// Return-to-sender baseline (the alternative Sec. 4 argues against).
// ---------------------------------------------------------------------------

class ReturnToSenderTest : public ForwardingTest {};

TEST_F(ReturnToSenderTest, MessagesStillArriveViaLocate) {
  ClusterConfig config;
  config.machines = 3;
  config.kernel.delivery_mode = KernelConfig::DeliveryMode::kReturnToSender;
  Cluster cluster(config);
  RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);

  // No forwarding address was left behind.
  EXPECT_EQ(cluster.kernel(0).process_table().FindEntry(setup.counter.pid), nullptr);

  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 1u);
  EXPECT_GE(cluster.TotalStat(stat::kMsgsBounced), 1);
  EXPECT_EQ(cluster.TotalStat(stat::kMsgsForwarded), 0);
}

TEST_F(ReturnToSenderTest, CostsMoreMessagesThanForwarding) {
  // Sec. 4: "more of the system would be involved in message forwarding."
  auto run = [this](KernelConfig::DeliveryMode mode) {
    ClusterConfig config;
    config.machines = 3;
    config.kernel.delivery_mode = mode;
    Cluster cluster(config);
    RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
    testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);
    const std::int64_t before = cluster.TotalStat(stat::kMsgsSent);
    TellRelayToSend(cluster, setup.relay);
    cluster.RunUntilIdle();
    EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 1u);
    return cluster.TotalStat(stat::kMsgsSent) - before;
  };

  const std::int64_t forwarding_cost = run(KernelConfig::DeliveryMode::kForwarding);
  const std::int64_t bounce_cost = run(KernelConfig::DeliveryMode::kReturnToSender);
  EXPECT_GT(bounce_cost, forwarding_cost);
}

TEST_F(ReturnToSenderTest, SecondSendGoesDirectAfterLinkPatch) {
  ClusterConfig config;
  config.machines = 3;
  config.kernel.delivery_mode = KernelConfig::DeliveryMode::kReturnToSender;
  Cluster cluster(config);
  RelaySetup setup = MakeRelayAndCounter(cluster, 2, 0);
  testutil::MigrateAndSettle(cluster, setup.counter.pid, 0, 1);

  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  const std::int64_t bounced_after_first = cluster.TotalStat(stat::kMsgsBounced);
  TellRelayToSend(cluster, setup.relay);
  cluster.RunUntilIdle();
  EXPECT_EQ(CounterValue(cluster, setup.counter.pid), 2u);
  EXPECT_EQ(cluster.TotalStat(stat::kMsgsBounced), bounced_after_first);  // no new bounce
}

}  // namespace
}  // namespace demos
