// Tests for the Cluster harness itself: stats aggregation, process location
// helpers, and kernel traffic over a reordering (jittered) network healed by
// the reliable layer.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace demos {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { testutil::RegisterPrograms(); }
};

TEST_F(ClusterTest, TotalStatsSumsAcrossKernels) {
  Cluster cluster(ClusterConfig{.machines = 3});
  auto a = cluster.kernel(0).SpawnProcess("counter");
  auto b = cluster.kernel(1).SpawnProcess("counter");
  ASSERT_TRUE(a.ok() && b.ok());
  cluster.RunUntilIdle();
  cluster.kernel(2).SendFromKernel(*a, kIncrement, {});
  cluster.kernel(2).SendFromKernel(*b, kIncrement, {});
  cluster.RunUntilIdle();

  const std::int64_t sum = cluster.kernel(0).stats().Get(stat::kMsgsDelivered) +
                           cluster.kernel(1).stats().Get(stat::kMsgsDelivered) +
                           cluster.kernel(2).stats().Get(stat::kMsgsDelivered);
  EXPECT_EQ(cluster.TotalStat(stat::kMsgsDelivered), sum);
  EXPECT_EQ(sum, 2);

  StatsRegistry total = cluster.TotalStats();
  EXPECT_EQ(total.Get(stat::kMsgsDelivered), sum);
}

TEST_F(ClusterTest, HostOfTracksMigration) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto p = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(p.ok());
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.HostOf(p->pid), 0);
  EXPECT_EQ(cluster.FindProcessAnywhere(p->pid), cluster.kernel(0).FindProcess(p->pid));

  testutil::MigrateAndSettle(cluster, p->pid, 0, 1);
  EXPECT_EQ(cluster.HostOf(p->pid), 1);
  EXPECT_EQ(cluster.HostOf(ProcessId{0, 999}), kNoMachine);
  EXPECT_EQ(cluster.FindProcessAnywhere(ProcessId{0, 999}), nullptr);
}

TEST_F(ClusterTest, RunForAdvancesVirtualTimeExactly) {
  Cluster cluster(ClusterConfig{.machines = 1});
  cluster.RunFor(12'345);
  EXPECT_EQ(cluster.queue().Now(), 12'345u);
  cluster.RunFor(655);
  EXPECT_EQ(cluster.queue().Now(), 13'000u);
}

TEST_F(ClusterTest, JitteredNetworkWithReliableLayerKeepsKernelTrafficCorrect) {
  // Heavy jitter reorders datagrams; the reliable layer restores per-pair
  // FIFO, so kernel-level traffic (including a migration) stays correct.
  ClusterConfig config;
  config.machines = 2;
  config.network.jitter_us = 2'000;  // >> propagation: aggressive reordering
  config.network.seed = 4242;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 20'000;
  Cluster cluster(config);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 8192, 4096, 1024);
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  for (int i = 0; i < 15; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();
  (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                         cluster.kernel(0).kernel_address());
  cluster.RunUntilIdle();
  for (int i = 0; i < 5; ++i) {
    cluster.kernel(0).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  }
  cluster.RunUntilIdle();

  ProcessRecord* moved = cluster.kernel(1).FindProcess(counter->pid);
  ASSERT_NE(moved, nullptr);
  ByteReader r(moved->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 20u);
}

TEST_F(ClusterTest, SeedVariationChangesKernelRandomness) {
  ClusterConfig a_config;
  a_config.kernel.seed = 1;
  ClusterConfig b_config;
  b_config.kernel.seed = 2;
  Cluster a(a_config);
  Cluster b(b_config);
  auto pa = a.kernel(0).SpawnProcess("idle");
  auto pb = b.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(pa.ok() && pb.ok());
  // The simulated register files are seeded from the kernel RNG.
  EXPECT_NE(a.kernel(0).FindProcess(pa->pid)->dispatch,
            b.kernel(0).FindProcess(pb->pid)->dispatch);
}

}  // namespace
}  // namespace demos
