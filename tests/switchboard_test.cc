// Switchboard tests (Sec. 2.3): registration, lookup, link distribution, and
// behaviour across migration of the switchboard itself.

#include <gtest/gtest.h>

#include "src/sys/switchboard.h"
#include "tests/sys_test_util.h"

namespace demos {
namespace {

class SwitchboardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterSystemPrograms();
    GlobalCapture().clear();
  }

  Link PlainLink(const ProcessAddress& to) {
    Link l;
    l.address = to;
    return l;
  }

  Link ReplyLink(const ProcessAddress& to) {
    Link l;
    l.address = to;
    l.flags = kLinkReply;
    return l;
  }
};

TEST_F(SwitchboardTest, RegisterThenLookupReturnsLink) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto sb = cluster.kernel(0).SpawnProcess("switchboard");
  auto echo = cluster.kernel(1).SpawnProcess("echo");
  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sb.ok() && echo.ok() && sink.ok());
  cluster.RunUntilIdle();
  testutil::TagProcess(cluster, *sink, 1);

  ByteWriter reg;
  reg.Str("echo_service");
  cluster.kernel(0).SendFromKernel(*sb, kSbRegister, reg.Take(), {PlainLink(*echo)});

  ByteWriter lookup;
  lookup.Str("echo_service");
  cluster.kernel(1).SendFromKernel(*sb, kSbLookup, lookup.Take(), {ReplyLink(*sink)});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, kSbLookupReply);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  EXPECT_EQ(r.Str(), "echo_service");
}

TEST_F(SwitchboardTest, LookupOfUnknownNameFails) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto sb = cluster.kernel(0).SpawnProcess("switchboard");
  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sb.ok() && sink.ok());
  cluster.RunUntilIdle();
  testutil::TagProcess(cluster, *sink, 2);

  ByteWriter lookup;
  lookup.Str("nothing_here");
  cluster.kernel(1).SendFromKernel(*sb, kSbLookup, lookup.Take(), {ReplyLink(*sink)});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(2);
  ASSERT_EQ(captured.size(), 1u);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kNotFound);
}

TEST_F(SwitchboardTest, ReRegistrationReplacesEntry) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto sb = cluster.kernel(0).SpawnProcess("switchboard");
  auto first = cluster.kernel(0).SpawnProcess("echo");
  auto second = cluster.kernel(1).SpawnProcess("echo");
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  ASSERT_TRUE(sb.ok() && first.ok() && second.ok() && sink.ok());
  cluster.RunUntilIdle();
  testutil::TagProcess(cluster, *sink, 3);

  for (const ProcessAddress& target : {*first, *second}) {
    ByteWriter reg;
    reg.Str("svc");
    cluster.kernel(0).SendFromKernel(*sb, kSbRegister, reg.Take(), {PlainLink(target)});
  }
  cluster.RunUntilIdle();

  ByteWriter lookup;
  lookup.Str("svc");
  cluster.kernel(0).SendFromKernel(*sb, kSbLookup, lookup.Take(), {ReplyLink(*sink)});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(3);
  ASSERT_EQ(captured.size(), 1u);
  // The carried link must point at the SECOND registration.
  // (Carried links are not stored in the capture payload; check the program.)
  SwitchboardProgram* program =
      testutil::ProgramOf<SwitchboardProgram>(cluster, sb->pid);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->entry_count(), 1u);
  ProcessRecord* record = cluster.kernel(0).FindProcess(sb->pid);
  bool points_at_second = false;
  for (const auto& slot : record->links.slots()) {
    if (slot.has_value() && slot->address.pid == second->pid) {
      points_at_second = true;
    }
  }
  EXPECT_TRUE(points_at_second);
}

TEST_F(SwitchboardTest, ListReturnsAllNames) {
  Cluster cluster(ClusterConfig{.machines = 1});
  auto sb = cluster.kernel(0).SpawnProcess("switchboard");
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  auto echo = cluster.kernel(0).SpawnProcess("echo");
  ASSERT_TRUE(sb.ok() && sink.ok() && echo.ok());
  cluster.RunUntilIdle();
  testutil::TagProcess(cluster, *sink, 4);

  for (const char* name : {"alpha", "beta", "gamma"}) {
    ByteWriter reg;
    reg.Str(name);
    cluster.kernel(0).SendFromKernel(*sb, kSbRegister, reg.Take(), {PlainLink(*echo)});
  }
  cluster.kernel(0).SendFromKernel(*sb, kSbList, {}, {ReplyLink(*sink)});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(4);
  ASSERT_EQ(captured.size(), 1u);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(r.U32(), 3u);
  EXPECT_EQ(r.Str(), "alpha");
  EXPECT_EQ(r.Str(), "beta");
  EXPECT_EQ(r.Str(), "gamma");
}

TEST_F(SwitchboardTest, SurvivesMigrationWithDirectoryIntact) {
  // The switchboard is a server with long-lived links (Sec. 2.4's hard case);
  // after migrating it, lookups through the OLD address still succeed.
  Cluster cluster(ClusterConfig{.machines = 3});
  auto sb = cluster.kernel(0).SpawnProcess("switchboard");
  auto echo = cluster.kernel(1).SpawnProcess("echo");
  auto sink = cluster.kernel(2).SpawnProcess("sink");
  ASSERT_TRUE(sb.ok() && echo.ok() && sink.ok());
  cluster.RunUntilIdle();
  testutil::TagProcess(cluster, *sink, 5);

  ByteWriter reg;
  reg.Str("svc");
  cluster.kernel(0).SendFromKernel(*sb, kSbRegister, reg.Take(), {PlainLink(*echo)});
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, sb->pid, 0, 2);
  ASSERT_NE(cluster.kernel(2).FindProcess(sb->pid), nullptr);

  ByteWriter lookup;
  lookup.Str("svc");
  // Old address (machine 0): goes through the forwarding address.
  cluster.kernel(1).SendFromKernel(ProcessAddress{0, sb->pid}, kSbLookup, lookup.Take(),
                                   {ReplyLink(*sink)});
  cluster.RunUntilIdle();

  auto captured = testutil::CapturedFor(5);
  ASSERT_EQ(captured.size(), 1u);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  SwitchboardProgram* program = testutil::ProgramOf<SwitchboardProgram>(cluster, sb->pid);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->entry_count(), 1u);  // name map survived in program state
}

TEST_F(SwitchboardTest, EveryProcessIsBornWithSwitchboardLink) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto sb = cluster.kernel(0).SpawnProcess("switchboard");
  ASSERT_TRUE(sb.ok());
  cluster.kernel(0).SetSwitchboard(*sb);
  cluster.kernel(1).SetSwitchboard(*sb);

  auto proc = cluster.kernel(1).SpawnProcess("idle");
  ASSERT_TRUE(proc.ok());
  cluster.RunUntilIdle();
  ProcessRecord* record = cluster.kernel(1).FindProcess(proc->pid);
  const Link* slot0 = record->links.Get(kSwitchboardSlot);
  ASSERT_NE(slot0, nullptr);
  EXPECT_EQ(slot0->address.pid, sb->pid);
}

}  // namespace
}  // namespace demos
