// Migration-policy unit tests: decision rules over synthetic load tables.

#include <gtest/gtest.h>

#include "src/policy/affinity_policy.h"
#include "src/policy/policy.h"
#include "src/policy/threshold_balancer.h"

namespace demos {
namespace {

LoadReport MakeReport(MachineId machine, double utilization, std::uint16_t ready,
                      std::vector<ProcessLoadEntry> processes = {}) {
  LoadReport report;
  report.machine = machine;
  report.live_processes = static_cast<std::uint16_t>(processes.size());
  report.ready_processes = ready;
  report.window_us = 100'000;
  report.cpu_busy_delta_us = static_cast<std::uint32_t>(utilization * 100'000);
  report.memory_used = 1000;
  report.memory_limit = 100'000;
  report.processes = std::move(processes);
  return report;
}

ProcessLoadEntry Proc(ProcessId pid, std::uint32_t cpu, MachineId partner = kNoMachine,
                      std::uint32_t partner_msgs = 0) {
  ProcessLoadEntry entry;
  entry.pid = pid;
  entry.cpu_used_us = cpu;
  entry.top_partner = partner;
  entry.top_partner_msgs = partner_msgs;
  return entry;
}

bool AnyProcess(const ProcessLoad&) { return true; }

TEST(LoadTableTest, ApplyAndSort) {
  LoadTable table;
  table.Apply(MakeReport(0, 0.9, 5), 1000);
  table.Apply(MakeReport(1, 0.1, 0), 1000);
  table.Apply(MakeReport(2, 0.5, 2), 1000);
  auto sorted = table.ByUtilization();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted.front().machine, 1);
  EXPECT_EQ(sorted.back().machine, 0);
}

TEST(LoadTableTest, UtilizationIsClamped) {
  LoadTable table;
  LoadReport overload = MakeReport(0, 5.0, 9);
  table.Apply(overload, 0);
  EXPECT_DOUBLE_EQ(table.machines().at(0).cpu_utilization, 1.0);
}

TEST(LoadTableTest, ExpireStaleDropsOldProcesses) {
  LoadTable table;
  table.Apply(MakeReport(0, 0.5, 1, {Proc({0, 1}, 100)}), 1000);
  table.Apply(MakeReport(1, 0.5, 1, {Proc({1, 1}, 100)}), 5000);
  table.ExpireStale(3000);
  EXPECT_EQ(table.processes().count(ProcessId{0, 1}), 0u);
  EXPECT_EQ(table.processes().count(ProcessId{1, 1}), 1u);
}

TEST(NullPolicyTest, NeverDecides) {
  NullPolicy policy;
  LoadTable table;
  table.Apply(MakeReport(0, 1.0, 10, {Proc({0, 1}, 1000)}), 0);
  table.Apply(MakeReport(1, 0.0, 0), 0);
  EXPECT_TRUE(policy.Decide(0, table, AnyProcess).empty());
}

TEST(ThresholdBalancerTest, MovesHeaviestProcessFromHotToCold) {
  ThresholdBalancerPolicy policy;
  LoadTable table;
  table.Apply(MakeReport(0, 0.95, 4, {Proc({0, 1}, 500), Proc({0, 2}, 900)}), 1000);
  table.Apply(MakeReport(1, 0.05, 0), 1000);

  auto decisions = policy.Decide(2000, table, AnyProcess);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].pid, (ProcessId{0, 2}));  // the heavier one
  EXPECT_EQ(decisions[0].from, 0);
  EXPECT_EQ(decisions[0].to, 1);
}

TEST(ThresholdBalancerTest, NoMoveBelowThreshold) {
  ThresholdBalancerPolicy policy;
  LoadTable table;
  table.Apply(MakeReport(0, 0.55, 1, {Proc({0, 1}, 500)}), 1000);
  table.Apply(MakeReport(1, 0.45, 1), 1000);
  EXPECT_TRUE(policy.Decide(2000, table, AnyProcess).empty());
}

TEST(ThresholdBalancerTest, HysteresisBlocksRapidRepeatMoves) {
  ThresholdBalancerConfig config;
  config.cooldown_us = 1'000'000;
  config.staleness_us = 10'000'000;  // keep the synthetic rows fresh
  ThresholdBalancerPolicy policy(config);
  LoadTable table;
  table.Apply(MakeReport(0, 0.95, 4, {Proc({0, 1}, 500), Proc({0, 2}, 600)}), 1000);
  table.Apply(MakeReport(1, 0.05, 0), 1000);

  EXPECT_EQ(policy.Decide(2000, table, AnyProcess).size(), 1u);
  EXPECT_TRUE(policy.Decide(10'000, table, AnyProcess).empty());  // inside cooldown
  EXPECT_EQ(policy.Decide(1'500'000, table, AnyProcess).size(), 1u);  // cooldown over
}

TEST(ThresholdBalancerTest, RespectsMovableFilter) {
  ThresholdBalancerPolicy policy;
  LoadTable table;
  table.Apply(MakeReport(0, 0.95, 4, {Proc({0, 1}, 500)}), 1000);
  table.Apply(MakeReport(1, 0.05, 0), 1000);
  auto none_movable = [](const ProcessLoad&) { return false; };
  EXPECT_TRUE(policy.Decide(2000, table, none_movable).empty());
}

TEST(ThresholdBalancerTest, IgnoresStaleRows) {
  ThresholdBalancerConfig config;
  config.staleness_us = 1000;
  ThresholdBalancerPolicy policy(config);
  LoadTable table;
  table.Apply(MakeReport(0, 0.95, 4, {Proc({0, 1}, 500)}), 0);  // stale by decision time
  table.Apply(MakeReport(1, 0.05, 0), 10'000);
  EXPECT_TRUE(policy.Decide(10'500, table, AnyProcess).empty());
}

TEST(ThresholdBalancerTest, QueueSpreadAloneTriggers) {
  ThresholdBalancerPolicy policy;
  LoadTable table;
  // Same CPU but very different ready queues.
  table.Apply(MakeReport(0, 0.5, 8, {Proc({0, 1}, 500)}), 1000);
  table.Apply(MakeReport(1, 0.5, 0), 1000);
  EXPECT_EQ(policy.Decide(2000, table, AnyProcess).size(), 1u);
}

TEST(AffinityPolicyTest, MovesProcessTowardItsTopPartner) {
  AffinityPolicyConfig config;
  config.min_remote_msgs = 10;
  AffinityPolicy policy(config);
  LoadTable table;
  table.Apply(MakeReport(0, 0.3, 1, {Proc({0, 1}, 100, /*partner=*/2, /*msgs=*/500)}), 1000);
  table.Apply(MakeReport(2, 0.2, 0), 1000);

  auto decisions = policy.Decide(2000, table, AnyProcess);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].pid, (ProcessId{0, 1}));
  EXPECT_EQ(decisions[0].to, 2);
}

TEST(AffinityPolicyTest, IgnoresLocalTraffic) {
  AffinityPolicy policy;
  LoadTable table;
  table.Apply(MakeReport(0, 0.3, 1, {Proc({0, 1}, 100, /*partner=*/0, /*msgs=*/500)}), 1000);
  EXPECT_TRUE(policy.Decide(2000, table, AnyProcess).empty());
}

TEST(AffinityPolicyTest, DoesNotMoveOntoHotMachine) {
  AffinityPolicyConfig config;
  config.destination_cap = 0.8;
  AffinityPolicy policy(config);
  LoadTable table;
  table.Apply(MakeReport(0, 0.3, 1, {Proc({0, 1}, 100, 2, 500)}), 1000);
  table.Apply(MakeReport(2, 0.95, 6), 1000);
  EXPECT_TRUE(policy.Decide(2000, table, AnyProcess).empty());
}

TEST(AffinityPolicyTest, DoesNotRetriggerOnOldTraffic) {
  AffinityPolicyConfig config;
  config.min_remote_msgs = 10;
  config.cooldown_us = 0;
  AffinityPolicy policy(config);
  LoadTable table;
  table.Apply(MakeReport(0, 0.3, 1, {Proc({0, 1}, 100, 2, 500)}), 1000);
  table.Apply(MakeReport(2, 0.2, 0), 1000);
  EXPECT_EQ(policy.Decide(2000, table, AnyProcess).size(), 1u);
  // Same counts again (process has not talked since): no new decision.
  EXPECT_TRUE(policy.Decide(3000, table, AnyProcess).empty());
}

TEST(PolicyRegistryTest, CreatesAllStandardPolicies) {
  RegisterStandardPolicies();
  for (const char* name : {"null", "threshold", "affinity"}) {
    auto policy = PolicyRegistry::Instance().Create(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_EQ(PolicyRegistry::Instance().Create("bogus"), nullptr);
}

}  // namespace
}  // namespace demos
