// End-to-end integration under an unreliable network: the full kernel stack
// (messaging, migration, file system) running over a lossy, duplicating
// SimNetwork with the ReliableTransport restoring the paper's assumed
// "any message sent will eventually be delivered" guarantee.

#include <gtest/gtest.h>

#include "tests/sys_test_util.h"

namespace demos {
namespace {

ClusterConfig LossyConfig(int machines, double drop, std::uint64_t seed) {
  ClusterConfig config;
  config.machines = machines;
  config.network.drop_probability = drop;
  config.network.duplicate_probability = drop / 4;
  config.network.seed = seed;
  config.reliable_layer = true;
  config.reliable.retransmit_timeout_us = 2'000;
  return config;
}

class LossyIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterSystemPrograms();
    RegisterWorkloadPrograms();
    GlobalCapture().clear();
  }
};

TEST_F(LossyIntegrationTest, MessagingIsExactlyOnceUnderLoss) {
  Cluster cluster(LossyConfig(2, 0.2, 42));
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  for (int i = 0; i < 30; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();
  ByteReader r(cluster.kernel(0).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 30u);
  EXPECT_GT(cluster.reliable()->stats().Get(stat::kRelRetransmits), 0);
}

TEST_F(LossyIntegrationTest, MigrationCompletesUnderLoss) {
  Cluster cluster(LossyConfig(2, 0.15, 7));
  auto counter = cluster.kernel(0).SpawnProcess("counter", 16 * 1024, 8192, 2048);
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);
  ProcessRecord* moved = cluster.kernel(1).FindProcess(counter->pid);
  ASSERT_NE(moved, nullptr);
  ByteReader r(moved->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 3u);

  cluster.kernel(0).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader r2(moved->memory.ReadData(0, 8));
  EXPECT_EQ(r2.U64(), 4u);
}

TEST_F(LossyIntegrationTest, FileSystemWorksUnderLoss) {
  Cluster cluster(LossyConfig(3, 0.1, 99));
  BootSystem(cluster);

  FsClientConfig config;
  config.mode = 2;
  config.io_size = 800;
  config.op_count = 6;
  config.think_us = 500;
  config.file_name = "lossy";
  auto client = cluster.kernel(1).SpawnProcess("fs_client", 4096,
                                               kFsClientBufferOffset + 1024, 2048);
  ASSERT_TRUE(client.ok());
  testutil::ConfigureFsClient(cluster, *client, config);

  ASSERT_TRUE(testutil::RunUntil(
      cluster,
      [&] { return testutil::ReadFsClientResults(cluster, client->pid).done != 0; },
      60'000'000));
  FsClientResults results = testutil::ReadFsClientResults(cluster, client->pid);
  EXPECT_EQ(results.completed, 6u);
  EXPECT_EQ(results.errors, 0u);
}

// Property sweep: migration mid-RPC under several loss rates and seeds; the
// client must complete its full series exactly once.
struct LossCase {
  int drop_percent;
  std::uint64_t seed;
};

class LossSweep : public LossyIntegrationTest,
                  public ::testing::WithParamInterface<LossCase> {};

TEST_P(LossSweep, RpcSeriesSurvivesMigrationUnderLoss) {
  Cluster cluster(LossyConfig(3, GetParam().drop_percent / 100.0, GetParam().seed));
  auto server = cluster.kernel(1).SpawnProcess("rpc_server");
  auto client = cluster.kernel(0).SpawnProcess("rpc_client");
  ASSERT_TRUE(server.ok() && client.ok());
  RpcClientConfig rpc;
  rpc.count = 25;
  rpc.period_us = 4000;
  (void)cluster.kernel(0).FindProcess(client->pid)->memory.WriteData(0, rpc.Encode());
  cluster.RunUntilIdle();

  Link to_server;
  to_server.address = *server;
  cluster.kernel(0).SendFromKernel(*client, kAttachTarget, {}, {to_server});
  cluster.RunFor(30'000);
  (void)cluster.kernel(1).StartMigration(server->pid, 2,
                                         cluster.kernel(1).kernel_address());
  cluster.RunUntilIdle();

  ProcessRecord* record = cluster.FindProcessAnywhere(client->pid);
  auto* program = dynamic_cast<RpcClientProgram*>(record->program.get());
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->samples().size(), 25u);
  EXPECT_EQ(cluster.HostOf(server->pid), 2);
}

INSTANTIATE_TEST_SUITE_P(Losses, LossSweep,
                         ::testing::Values(LossCase{0, 1}, LossCase{5, 2}, LossCase{10, 3},
                                           LossCase{20, 4}, LossCase{20, 5},
                                           LossCase{30, 6}));

}  // namespace
}  // namespace demos
