// Tests for the src/obs tracing subsystem: span reconstruction under
// concurrent migrations, message forwarding-hop tracking across a 3-machine
// chain, the disabled-tracer zero-event guarantee, and Chrome trace_event
// JSON well-formedness.

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "src/kernel/cluster.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "tests/test_util.h"

namespace demos {
namespace {

ClusterConfig TracedConfig(int machines) {
  ClusterConfig config;
  config.machines = machines;
  config.EnableTracing();
  return config;
}

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (objects, arrays, strings, numbers, literals).
// Enough to prove the exporter emits parseable trace_event JSON.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    std::size_t len = std::string_view(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '}') {
      return false;
    }
    ++pos_;
    return true;
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ']') {
      return false;
    }
    ++pos_;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(TraceTest, DisabledTracerRecordsNothing) {
  testutil::RegisterPrograms();
  ClusterConfig config;
  config.machines = 2;  // tracing left at the default: off everywhere
  Cluster cluster(config);

  auto proc = cluster.kernel(0).SpawnProcess("counter", 4096, 2048, 1024);
  ASSERT_TRUE(proc.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, proc->pid, 0, 1);

  EXPECT_EQ(cluster.HostOf(proc->pid), 1);
  EXPECT_TRUE(cluster.TotalTrace().empty());
  EXPECT_FALSE(cluster.kernel(0).tracer().enabled());
  EXPECT_FALSE(cluster.network().tracer().enabled());
}

TEST(TraceTest, SingleMigrationYieldsAllEightPhases) {
  testutil::RegisterPrograms();
  Cluster cluster(TracedConfig(2));

  auto proc = cluster.kernel(0).SpawnProcess("counter", 4096, 2048, 1024);
  ASSERT_TRUE(proc.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, proc->pid, 0, 1);

  Tracer total = cluster.TotalTrace();
  ASSERT_FALSE(total.empty());

  auto spans = BuildMigrationSpans(total.events());
  ASSERT_EQ(spans.size(), 1u);
  const MigrationSpan& span = spans[0];
  EXPECT_TRUE(span.completed);
  EXPECT_FALSE(span.aborted);
  EXPECT_EQ(span.pid, proc->pid);
  EXPECT_EQ(span.source, 0);
  EXPECT_EQ(span.destination, 1);
  EXPECT_GT(span.duration(), 0u);
  EXPECT_GT(span.bytes_moved, 0u);

  // All 8 protocol phases reconstructed, each nested within the root span,
  // with monotonically non-decreasing start times.
  for (int i = 0; i < kNumMigrationPhases; ++i) {
    const MigrationPhaseSpan& phase = span.phases[i];
    EXPECT_TRUE(phase.valid) << "phase " << MigrationPhaseName(phase.kind);
    EXPECT_GE(phase.start, span.start) << MigrationPhaseName(phase.kind);
    EXPECT_LE(phase.end, span.end) << MigrationPhaseName(phase.kind);
    EXPECT_GE(phase.end, phase.start) << MigrationPhaseName(phase.kind);
    if (i > 0) {
      EXPECT_GE(phase.start, span.phases[i - 1].start)
          << MigrationPhaseName(phase.kind) << " starts before "
          << MigrationPhaseName(span.phases[i - 1].kind);
    }
  }

  // The three section moves carried the image.
  const auto& resident = span.phases[static_cast<int>(MigrationPhaseKind::kMoveResident)];
  const auto& image = span.phases[static_cast<int>(MigrationPhaseKind::kMoveImage)];
  EXPECT_GT(resident.bytes, 0u);
  EXPECT_GT(image.bytes, 0u);
}

TEST(TraceTest, ConcurrentMigrationsReconstructIndependently) {
  testutil::RegisterPrograms();
  Cluster cluster(TracedConfig(3));

  auto p0 = cluster.kernel(0).SpawnProcess("counter", 4096, 2048, 1024);
  auto p1 = cluster.kernel(1).SpawnProcess("idle", 2048, 1024, 512);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  cluster.RunUntilIdle();

  // Both migrations target m2 and run interleaved on the same timeline.
  ASSERT_TRUE(
      cluster.kernel(0).StartMigration(p0->pid, 2, cluster.kernel(0).kernel_address()).ok());
  ASSERT_TRUE(
      cluster.kernel(1).StartMigration(p1->pid, 2, cluster.kernel(1).kernel_address()).ok());
  cluster.RunUntilIdle();

  EXPECT_EQ(cluster.HostOf(p0->pid), 2);
  EXPECT_EQ(cluster.HostOf(p1->pid), 2);

  auto spans = BuildMigrationSpans(cluster.TotalTrace().events());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].id, spans[1].id);
  for (const MigrationSpan& span : spans) {
    EXPECT_TRUE(span.completed);
    EXPECT_EQ(span.destination, 2);
    for (const MigrationPhaseSpan& phase : span.phases) {
      EXPECT_TRUE(phase.valid) << MigrationPhaseName(phase.kind);
      EXPECT_GE(phase.start, span.start);
      EXPECT_LE(phase.end, span.end);
    }
  }
  EXPECT_TRUE((spans[0].pid == p0->pid && spans[1].pid == p1->pid) ||
              (spans[0].pid == p1->pid && spans[1].pid == p0->pid));
}

TEST(TraceTest, ForwardingChainRecordsHops) {
  testutil::RegisterPrograms();
  Cluster cluster(TracedConfig(3));

  auto proc = cluster.kernel(0).SpawnProcess("counter", 4096, 2048, 1024);
  ASSERT_TRUE(proc.ok());
  cluster.RunUntilIdle();

  // Leave a forwarding address on m0 and then on m1.
  testutil::MigrateAndSettle(cluster, proc->pid, 0, 1);
  testutil::MigrateAndSettle(cluster, proc->pid, 1, 2);
  ASSERT_EQ(cluster.HostOf(proc->pid), 2);

  // A message addressed to the original home must chase the process through
  // both forwarding addresses: m0 -> m1 -> m2.
  cluster.kernel(0).SendFromKernel(ProcessAddress{0, proc->pid}, kIncrement, {});
  cluster.RunUntilIdle();

  auto messages = BuildMessageTraces(cluster.TotalTrace().events());
  std::uint32_t max_hops = 0;
  bool delivered_with_hops = false;
  for (const MessageTrace& msg : messages) {
    max_hops = std::max(max_hops, msg.hops);
    if (msg.hops >= 2 && msg.was_delivered) {
      delivered_with_hops = true;
      EXPECT_GT(msg.Latency(), 0u);
    }
  }
  EXPECT_GE(max_hops, 2u);
  EXPECT_TRUE(delivered_with_hops);

  // The same fact lands in the derived histogram.
  StatsRegistry derived;
  BuildTraceStats(cluster.TotalTrace().events(), &derived);
  const Distribution* hops = derived.GetDistribution(stat::kForwardHops);
  ASSERT_NE(hops, nullptr);
  EXPECT_GE(hops->Max(), 2.0);
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  testutil::RegisterPrograms();
  Cluster cluster(TracedConfig(2));

  auto proc = cluster.kernel(0).SpawnProcess("counter", 4096, 2048, 1024);
  ASSERT_TRUE(proc.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, proc->pid, 0, 1);

  std::ostringstream out;
  WriteChromeTrace(cluster.TotalTrace().events(), out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("migration_begin"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // reconstructed spans
  EXPECT_NE(json.find("forwarding_address_installed"), std::string::npos);
}

TEST(TraceTest, SummaryMentionsEveryPhase) {
  testutil::RegisterPrograms();
  Cluster cluster(TracedConfig(2));

  auto proc = cluster.kernel(0).SpawnProcess("counter", 4096, 2048, 1024);
  ASSERT_TRUE(proc.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, proc->pid, 0, 1);

  std::ostringstream out;
  WriteTraceSummary(cluster.TotalTrace().events(), out);
  const std::string text = out.str();
  for (int i = 0; i < kNumMigrationPhases; ++i) {
    EXPECT_NE(text.find(MigrationPhaseName(static_cast<MigrationPhaseKind>(i))),
              std::string::npos)
        << "summary missing phase " << i;
  }
}

}  // namespace
}  // namespace demos
