// The paper's flagship demonstration (Sec. 2.3): "It migrates a file system
// process while several user processes are performing I/O.  This is more
// difficult than moving a user process."  These tests migrate each movable
// file-system process -- and the clients -- mid-workload and require every
// operation to complete without error.

#include <gtest/gtest.h>

#include "src/sys/fs/request_interpreter.h"
#include "tests/sys_test_util.h"

namespace demos {
namespace {

class FsMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterSystemPrograms();
    GlobalCapture().clear();
  }

  struct Scenario {
    Cluster cluster{ClusterConfig{.machines = 4}};
    SystemLayout layout;
    std::vector<ProcessId> clients;
  };

  // Boot and start `n_clients` I/O workloads.
  void Start(Scenario& s, int n_clients, std::uint32_t ops_per_client = 10) {
    s.layout = BootSystem(s.cluster);
    for (int i = 0; i < n_clients; ++i) {
      FsClientConfig config;
      config.mode = 2;
      config.io_size = 900;
      config.op_count = ops_per_client;
      config.think_us = 400;
      config.file_name = "mig_" + std::to_string(i);
      auto client = s.cluster.kernel(static_cast<MachineId>(1 + i % 3))
                        .SpawnProcess("fs_client", 4096, kFsClientBufferOffset + 2048, 2048);
      ASSERT_TRUE(client.ok());
      testutil::ConfigureFsClient(s.cluster, *client, config);
      s.clients.push_back(client->pid);
    }
  }

  void ExpectAllFinished(Scenario& s, std::uint32_t ops_per_client = 10) {
    for (const ProcessId& pid : s.clients) {
      ASSERT_TRUE(testutil::RunUntil(
          s.cluster,
          [&] { return testutil::ReadFsClientResults(s.cluster, pid).done != 0; },
          60'000'000))
          << "client " << pid.ToString() << " never finished";
      FsClientResults results = testutil::ReadFsClientResults(s.cluster, pid);
      EXPECT_EQ(results.completed, ops_per_client);
      EXPECT_EQ(results.errors, 0u);
    }
  }

  // Let some I/O happen, then migrate `victim` to `dest` mid-stream.
  void MigrateMidStream(Scenario& s, const ProcessId& victim, MachineId dest) {
    s.cluster.RunFor(15'000);  // several ops in flight / completed
    const MachineId from = s.cluster.HostOf(victim);
    ASSERT_NE(from, kNoMachine);
    ASSERT_TRUE(s.cluster.kernel(from)
                    .StartMigration(victim, dest, s.cluster.kernel(from).kernel_address())
                    .ok());
  }
};

TEST_F(FsMigrationTest, MigrateRequestInterpreterDuringIo) {
  Scenario s;
  Start(s, /*n_clients=*/3);
  MigrateMidStream(s, s.layout.fs_request.pid, 3);
  ExpectAllFinished(s);
  EXPECT_EQ(s.cluster.HostOf(s.layout.fs_request.pid), 3);
  RequestInterpreterProgram* ri =
      testutil::ProgramOf<RequestInterpreterProgram>(s.cluster, s.layout.fs_request.pid);
  ASSERT_NE(ri, nullptr);
  EXPECT_EQ(ri->inflight_ops(), 0u);  // everything drained after the move
  EXPECT_GT(ri->completed_ops(), 0);
}

TEST_F(FsMigrationTest, MigrateBufferManagerDuringIo) {
  Scenario s;
  Start(s, 3);
  MigrateMidStream(s, s.layout.fs_buffers.pid, 2);
  ExpectAllFinished(s);
  EXPECT_EQ(s.cluster.HostOf(s.layout.fs_buffers.pid), 2);
}

TEST_F(FsMigrationTest, MigrateDirectoryServiceDuringIo) {
  Scenario s;
  Start(s, 3);
  MigrateMidStream(s, s.layout.fs_directory.pid, 1);
  ExpectAllFinished(s);
}

TEST_F(FsMigrationTest, MigrateClientDuringIo) {
  Scenario s;
  Start(s, 2);
  MigrateMidStream(s, s.clients[0], 3);
  ExpectAllFinished(s);
  EXPECT_EQ(s.cluster.HostOf(s.clients[0]), 3);
}

TEST_F(FsMigrationTest, MigrateRequestInterpreterTwiceDuringIo) {
  Scenario s;
  Start(s, 3, /*ops_per_client=*/14);
  MigrateMidStream(s, s.layout.fs_request.pid, 3);
  s.cluster.RunFor(30'000);
  const MachineId now_at = s.cluster.HostOf(s.layout.fs_request.pid);
  if (now_at != kNoMachine) {
    (void)s.cluster.kernel(now_at).StartMigration(
        s.layout.fs_request.pid, 1, s.cluster.kernel(now_at).kernel_address());
  }
  ExpectAllFinished(s, 14);
}

TEST_F(FsMigrationTest, MigrateRequestInterpreterAndClientTogether) {
  Scenario s;
  Start(s, 2);
  MigrateMidStream(s, s.layout.fs_request.pid, 3);
  MigrateMidStream(s, s.clients[1], 2);
  ExpectAllFinished(s);
}

// Property sweep: inject the request-interpreter migration at many different
// instants; all client I/O must complete errorlessly every time.
class FsMigrationRaceSweep : public FsMigrationTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(FsMigrationRaceSweep, IoSurvivesMigrationAtAnyInstant) {
  Scenario s;
  Start(s, 2, /*ops_per_client=*/8);
  const SimDuration offset = 2'000 + static_cast<SimDuration>(GetParam()) * 3'700;
  s.cluster.RunFor(offset);
  const MachineId from = s.cluster.HostOf(s.layout.fs_request.pid);
  (void)s.cluster.kernel(from).StartMigration(s.layout.fs_request.pid, 3,
                                              s.cluster.kernel(from).kernel_address());
  ExpectAllFinished(s, 8);
}

INSTANTIATE_TEST_SUITE_P(Instants, FsMigrationRaceSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace demos
