// Shared helpers for the DEMOS/MP test suite: small programs that exercise
// the kernel-call surface, and convenience wrappers for driving a Cluster.

#ifndef DEMOS_TESTS_TEST_UTIL_H_
#define DEMOS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/kernel/cluster.h"
#include "src/kernel/context_impl.h"
#include "src/proc/program.h"

namespace demos {

// User-level message types shared by the test programs.
inline constexpr MsgType kPing = static_cast<MsgType>(1001);
inline constexpr MsgType kPong = static_cast<MsgType>(1002);
inline constexpr MsgType kIncrement = static_cast<MsgType>(1003);
inline constexpr MsgType kGiveLink = static_cast<MsgType>(1004);  // carries a link to self
inline constexpr MsgType kNote = static_cast<MsgType>(1005);

// Records every non-kernel message a SinkProgram instance receives.  Keyed by
// a tag stored in the process's data segment, so the log survives the sink
// being looked at from any machine (sinks themselves are not migrated in
// tests that rely on this).
struct CapturedMessage {
  std::uint64_t tag = 0;
  MsgType type = MsgType::kInvalid;
  Bytes payload;
  ProcessAddress sender;
  SimTime at = 0;
};

inline std::vector<CapturedMessage>& GlobalCapture() {
  static std::vector<CapturedMessage> capture;
  return capture;
}

// Echoes kPing as kPong over the carried reply link.
class EchoProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type == kPing) {
      (void)ctx.Reply(msg, kPong, msg.payload);
    }
  }
};

// Maintains a counter at data[0..8) and a private counter in program state;
// both must survive migration for the transparency tests to pass.
class CounterProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != kIncrement) {
      return;
    }
    ByteReader r(ctx.ReadData(0, 8));
    std::uint64_t count = r.U64();
    ++count;
    ByteWriter w;
    w.U64(count);
    (void)ctx.WriteData(0, w.bytes());
    ++private_count_;
    if (!msg.carried_links.empty()) {
      ByteWriter reply;
      reply.U64(count);
      reply.U64(private_count_);
      (void)ctx.Reply(msg, kPong, reply.Take());
    }
  }

  Bytes SaveState() const override {
    ByteWriter w;
    w.U64(private_count_);
    return w.Take();
  }

  void RestoreState(const Bytes& state) override {
    ByteReader r(state);
    private_count_ = r.U64();
  }

 private:
  std::uint64_t private_count_ = 0;
};

// Appends everything it receives to GlobalCapture(), tagged by data[0..8).
class SinkProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    ByteReader r(ctx.ReadData(0, 8));
    CapturedMessage captured;
    captured.tag = r.U64();
    captured.type = msg.type;
    captured.payload = msg.payload.ToBytes();
    captured.sender = msg.sender;
    captured.at = ctx.now();
    GlobalCapture().push_back(std::move(captured));
  }
};

// Does nothing; exists to be migrated around.
class IdleProgram : public Program {};

inline constexpr MsgType kSendViaTable = static_cast<MsgType>(1006);
inline constexpr MsgType kGoTo = static_cast<MsgType>(1007);

// Holds links in its table; on kSendViaTable {link_id u32, type u16, payload}
// sends over the stored link.  Used to observe lazy link update (Sec. 5).
class RelayProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != kSendViaTable) {
      return;
    }
    ByteReader r(msg.payload);
    const LinkId link = r.U32();
    const auto type = static_cast<MsgType>(r.U16());
    (void)ctx.Send(link, type, r.Blob());
  }
};

// Sets a timer in OnStart and counts firings at data[8..16); the count must
// be exactly one even if the process migrates before the timer fires.
class TimerProgram : public Program {
 public:
  void OnStart(Context& ctx) override { ctx.SetTimer(50'000, 77); }

  void OnTimer(Context& ctx, std::uint64_t cookie) override {
    if (cookie != 77) {
      return;
    }
    ByteReader r(ctx.ReadData(8, 8));
    std::uint64_t fired = r.U64();
    ByteWriter w;
    w.U64(fired + 1);
    (void)ctx.WriteData(8, w.bytes());
  }
};

// Migrates itself on request: kGoTo {machine u16} (Sec. 3.1's voluntary
// migration).  Also counts kIncrement like CounterProgram.
class NomadProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type == kGoTo) {
      ByteReader r(msg.payload);
      ctx.RequestMigration(r.U16());
    } else if (msg.type == kIncrement) {
      ByteReader r(ctx.ReadData(0, 8));
      ByteWriter w;
      w.U64(r.U64() + 1);
      (void)ctx.WriteData(0, w.bytes());
    }
  }
};

namespace testutil {

// Ensure the standard test programs are registered exactly once.
inline void RegisterPrograms() {
  static const bool registered = [] {
    auto& reg = ProgramRegistry::Instance();
    reg.Register("echo", [] { return std::make_unique<EchoProgram>(); });
    reg.Register("counter", [] { return std::make_unique<CounterProgram>(); });
    reg.Register("sink", [] { return std::make_unique<SinkProgram>(); });
    reg.Register("idle", [] { return std::make_unique<IdleProgram>(); });
    reg.Register("relay", [] { return std::make_unique<RelayProgram>(); });
    reg.Register("timer", [] { return std::make_unique<TimerProgram>(); });
    reg.Register("nomad", [] { return std::make_unique<NomadProgram>(); });
    return true;
  }();
  (void)registered;
}

// Stamp a u64 tag into a process's data segment (for SinkProgram).
inline void TagProcess(Cluster& cluster, const ProcessAddress& addr, std::uint64_t tag) {
  ProcessRecord* record = cluster.kernel(addr.last_known_machine).FindProcess(addr.pid);
  ByteWriter w;
  w.U64(tag);
  (void)record->memory.WriteData(0, w.bytes());
}

// Messages captured for a given tag.
inline std::vector<CapturedMessage> CapturedFor(std::uint64_t tag) {
  std::vector<CapturedMessage> out;
  for (const CapturedMessage& m : GlobalCapture()) {
    if (m.tag == tag) {
      out.push_back(m);
    }
  }
  return out;
}

// Migrate `pid` (currently on `from`) to `to` and settle the cluster.
inline void MigrateAndSettle(Cluster& cluster, const ProcessId& pid, MachineId from,
                             MachineId to) {
  (void)cluster.kernel(from).StartMigration(pid, to, cluster.kernel(from).kernel_address());
  cluster.RunUntilIdle();
}

}  // namespace testutil
}  // namespace demos

#endif  // DEMOS_TESTS_TEST_UTIL_H_
