// Tests for the real-socket transport (single process, multiple sockets on
// loopback, pumped manually).

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/net/udp_transport.h"
#include "src/sim/event_queue.h"
#include "tests/test_util.h"

namespace demos {
namespace {

// Pick a port base unlikely to collide across test shards.
std::uint16_t PortBase() { return static_cast<std::uint16_t>(34000 + (getpid() % 2000)); }

TEST(UdpTransportTest, DatagramRoundTrip) {
  const std::uint16_t base = PortBase();
  UdpTransport a(0, base);
  UdpTransport b(1, base);
  ASSERT_TRUE(a.Open().ok());
  ASSERT_TRUE(b.Open().ok());

  std::vector<std::pair<MachineId, Bytes>> received;
  b.Attach(1, [&](MachineId src, PayloadRef payload) {
    received.emplace_back(src, payload.ToBytes());
  });

  a.Send(0, 1, {1, 2, 3, 4});
  for (int i = 0; i < 100 && received.empty(); ++i) {
    b.Wait(10);
  }
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 0);
  EXPECT_EQ(received[0].second, (Bytes{1, 2, 3, 4}));
}

TEST(UdpTransportTest, SelfSendLoopsThroughSocket) {
  const std::uint16_t base = static_cast<std::uint16_t>(PortBase() + 10);
  UdpTransport a(0, base);
  ASSERT_TRUE(a.Open().ok());
  int got = 0;
  a.Attach(0, [&](MachineId src, PayloadRef payload) {
    EXPECT_EQ(src, 0);
    EXPECT_EQ(payload.size(), 2u);
    ++got;
  });
  a.Send(0, 0, {9, 9});
  for (int i = 0; i < 100 && got == 0; ++i) {
    a.Wait(10);
  }
  EXPECT_EQ(got, 1);
}

TEST(UdpTransportTest, BindFailureIsReported) {
  const std::uint16_t base = static_cast<std::uint16_t>(PortBase() + 20);
  UdpTransport first(0, base);
  ASSERT_TRUE(first.Open().ok());
  UdpTransport clash(0, base);  // same machine id -> same port
  EXPECT_FALSE(clash.Open().ok());
}

TEST(UdpTransportTest, FullKernelMigrationOverRealSockets) {
  // Two kernels in this process, each on its own socket, pumped round-robin;
  // the counter migrates m0 -> m1 and keeps counting.  This is the in-process
  // version of examples/realtime_sockets.cpp.
  testutil::RegisterPrograms();
  const std::uint16_t base = static_cast<std::uint16_t>(PortBase() + 30);
  EventQueue q0;
  EventQueue q1;
  UdpTransport t0(0, base);
  UdpTransport t1(1, base);
  ASSERT_TRUE(t0.Open().ok());
  ASSERT_TRUE(t1.Open().ok());
  Kernel k0(0, &q0, &t0, {});
  Kernel k1(1, &q1, &t1, {});

  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      t0.Poll();
      t1.Poll();
      // Advance both virtual clocks in lockstep 1ms slices.
      q0.RunFor(1000);
      q1.RunFor(1000);
    }
  };

  auto counter = k0.SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  pump(5);
  for (int i = 0; i < 3; ++i) {
    k1.SendFromKernel(*counter, kIncrement, {});
  }
  pump(10);

  ASSERT_TRUE(k0.StartMigration(counter->pid, 1, k0.kernel_address()).ok());
  pump(50);
  ProcessRecord* moved = k1.FindProcess(counter->pid);
  ASSERT_NE(moved, nullptr);
  ByteReader r(moved->memory.ReadData(0, 8));
  EXPECT_EQ(r.U64(), 3u);

  // Stale-address traffic is forwarded by k0's real forwarding address.
  k1.SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  pump(20);
  ByteReader r2(moved->memory.ReadData(0, 8));
  EXPECT_EQ(r2.U64(), 4u);
  EXPECT_EQ(k0.stats().Get(stat::kMsgsForwarded), 1);
}

}  // namespace
}  // namespace demos
