// Helpers for system-process tests: boots the Sec. 2.3 process set on a
// cluster and provides predicate-driven settling (clusters with periodic
// load reports never go idle, so RunUntilIdle is unusable here).

#ifndef DEMOS_TESTS_SYS_TEST_UTIL_H_
#define DEMOS_TESTS_SYS_TEST_UTIL_H_

#include <functional>

#include "src/kernel/cluster.h"
#include "src/sys/bootstrap.h"
#include "src/sys/fs/fs_client.h"
#include "src/sys/protocol.h"
#include "src/workload/programs.h"
#include "tests/test_util.h"

namespace demos {
namespace testutil {

// Run the cluster in steps until `done` holds or `max_us` virtual time
// elapses.  Returns whether the predicate became true.
inline bool RunUntil(Cluster& cluster, const std::function<bool()>& done,
                     SimDuration max_us = 5'000'000, SimDuration step_us = 5'000) {
  const SimTime deadline = cluster.queue().Now() + max_us;
  while (!done()) {
    if (cluster.queue().Now() >= deadline) {
      return false;
    }
    cluster.RunFor(step_us);
  }
  return true;
}

// Write an FsClient configuration into a just-spawned client process.
inline void ConfigureFsClient(Cluster& cluster, const ProcessAddress& client,
                              const FsClientConfig& config) {
  ProcessRecord* record = cluster.kernel(client.last_known_machine).FindProcess(client.pid);
  (void)record->memory.WriteData(0, config.Encode());
}

// Read the results window of a (possibly migrated) FsClient.
inline FsClientResults ReadFsClientResults(Cluster& cluster, const ProcessId& pid) {
  ProcessRecord* record = cluster.FindProcessAnywhere(pid);
  if (record == nullptr) {
    return {};
  }
  return FsClientResults::Decode(record->memory.ReadData(64, 40));
}

// Dynamic-cast view of a live program (works wherever the process lives).
template <typename T>
T* ProgramOf(Cluster& cluster, const ProcessId& pid) {
  ProcessRecord* record = cluster.FindProcessAnywhere(pid);
  return record == nullptr ? nullptr : dynamic_cast<T*>(record->program.get());
}

}  // namespace testutil
}  // namespace demos

#endif  // DEMOS_TESTS_SYS_TEST_UTIL_H_
