// Tests for the shard-level observability layer (src/obs): the metrics
// engine's catalog/histograms/snapshots (including a snapshot-under-write
// stress that TSan must pass), the flight recorder's ring semantics and
// deterministic dumps, the hub's trigger latch, the legacy StatsRegistry /
// PayloadCounters fold with its alias table, the exporters, and the
// parallel-trace clock normalization.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/stats.h"
#include "src/check/chaos.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/run/parallel_cluster.h"
#include "src/workload/programs.h"
#include "src/workload/token_ring_harness.h"

namespace demos {
namespace {

// ---------------------------------------------------------------------------
// Catalog.
// ---------------------------------------------------------------------------

TEST(MetricsCatalog, EveryIdHasAName) {
  for (int i = 0; i < kNumCounterIds; ++i) {
    EXPECT_STRNE(CounterName(static_cast<CounterId>(i)), "") << "counter " << i;
  }
  for (int i = 0; i < kNumGaugeIds; ++i) {
    EXPECT_STRNE(GaugeName(static_cast<GaugeId>(i)), "") << "gauge " << i;
  }
  for (int i = 0; i < kNumHistogramIds; ++i) {
    EXPECT_STRNE(HistogramName(static_cast<HistogramId>(i)), "") << "histogram " << i;
  }
  for (int i = 1; i < static_cast<int>(FrEvent::kInvariantFail) + 1; ++i) {
    EXPECT_STRNE(FrEventName(static_cast<FrEvent>(i)), "") << "fr event " << i;
  }
}

// ---------------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------------

TEST(Histogram, PowerOfTwoBucketing) {
  EXPECT_EQ(HistogramBucketOf(0), 0);
  EXPECT_EQ(HistogramBucketOf(1), 1);
  EXPECT_EQ(HistogramBucketOf(2), 2);
  EXPECT_EQ(HistogramBucketOf(3), 2);
  EXPECT_EQ(HistogramBucketOf(4), 3);
  EXPECT_EQ(HistogramBucketOf(7), 3);
  EXPECT_EQ(HistogramBucketOf(8), 4);
  // Tail clamp: anything at or past 2^18 lands in the last bucket.
  EXPECT_EQ(HistogramBucketOf(std::uint64_t{1} << 18), kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketOf(~std::uint64_t{0}), kHistogramBuckets - 1);

  // Every representable value falls inside its bucket's [lower, upper].
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5},
                                std::uint64_t{1000}, std::uint64_t{1} << 30}) {
    const int b = HistogramBucketOf(v);
    EXPECT_GE(v, HistogramBucketLowerBound(b)) << v;
    EXPECT_LE(v, HistogramBucketUpperBound(b)) << v;
  }
}

TEST(Histogram, ObserveSnapshotAndMerge) {
  MetricShard a;
  MetricShard b;
  for (int i = 0; i < 10; ++i) {
    a.Observe(HistogramId::kDrainBatchSize, 3);  // bucket 2
  }
  for (int i = 0; i < 5; ++i) {
    b.Observe(HistogramId::kDrainBatchSize, 100);  // bucket 7
  }
  HistogramSnapshot ha = a.Histogram(HistogramId::kDrainBatchSize);
  const HistogramSnapshot hb = b.Histogram(HistogramId::kDrainBatchSize);
  EXPECT_EQ(ha.count, 10u);
  EXPECT_EQ(ha.sum, 30u);
  EXPECT_EQ(ha.buckets[2], 10u);
  ha.Merge(hb);
  EXPECT_EQ(ha.count, 15u);
  EXPECT_EQ(ha.sum, 30u + 500u);
  EXPECT_EQ(ha.buckets[2], 10u);
  EXPECT_EQ(ha.buckets[HistogramBucketOf(100)], 5u);
  EXPECT_DOUBLE_EQ(ha.Mean(), 530.0 / 15.0);
  // Quantiles report bucket upper bounds: the 0.5 quantile of 10x3 + 5x100
  // sits in bucket 2 (values 2..3).
  EXPECT_EQ(ha.QuantileBound(0.5), 3u);
  EXPECT_EQ(ha.QuantileBound(1.0), HistogramBucketUpperBound(HistogramBucketOf(100)));
}

// ---------------------------------------------------------------------------
// Snapshot under concurrent writes.  The contract: writers never block, the
// reader sees a coherent-enough point-in-time view, and the final snapshot
// (after join) is exact.  Run under TSan this also proves the slab really is
// race-free.
// ---------------------------------------------------------------------------

TEST(MetricsEngine, SnapshotWhileWritersRun) {
  constexpr int kShards = 4;
  constexpr std::uint64_t kPerShard = 50'000;
  MetricsEngine engine(kShards);

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kShards);
  for (int i = 0; i < kShards; ++i) {
    writers.emplace_back([&engine, &go, i] {
      while (!go.load(std::memory_order_acquire)) {
      }
      MetricShard& slab = engine.shard(i);
      for (std::uint64_t n = 0; n < kPerShard; ++n) {
        slab.Inc(CounterId::kMsgsDrained);
        slab.Set(GaugeId::kMailboxDepth, static_cast<std::int64_t>(n));
        slab.Observe(HistogramId::kDrainBatchSize, n & 0xFF);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Concurrent snapshots: monotone counters must never appear to decrease.
  std::uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const MetricsSnapshot snap = engine.Snapshot();
    const std::uint64_t now = snap.total.counters[static_cast<int>(CounterId::kMsgsDrained)];
    EXPECT_GE(now, last);
    last = now;
    std::this_thread::yield();
  }
  for (std::thread& t : writers) {
    t.join();
  }

  const MetricsSnapshot final_snap = engine.Snapshot();
  EXPECT_EQ(final_snap.total.counters[static_cast<int>(CounterId::kMsgsDrained)],
            kPerShard * kShards);
  const HistogramSnapshot h =
      final_snap.total.histograms[static_cast<int>(HistogramId::kDrainBatchSize)];
  EXPECT_EQ(h.count, kPerShard * kShards);
  for (int i = 0; i < kShards; ++i) {
    EXPECT_EQ(final_snap.shards[static_cast<std::size_t>(i)]
                  .counters[static_cast<int>(CounterId::kMsgsDrained)],
              kPerShard);
    EXPECT_EQ(final_snap.shards[static_cast<std::size_t>(i)]
                  .gauges[static_cast<int>(GaugeId::kMailboxDepth)],
              static_cast<std::int64_t>(kPerShard - 1));
  }
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

// Deterministic test clock: monotonically increasing counter via ctx.
std::uint64_t CountingClock(void* ctx) {
  return (*static_cast<std::uint64_t*>(ctx))++;
}

TEST(FlightRecorder, WrapAroundKeepsNewestWindow) {
  std::uint64_t tick = 0;
  FlightRecorder rec(/*shard=*/3, /*capacity=*/8);
  rec.SetClock(&CountingClock, &tick);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.Record(FrEvent::kMailboxPush, /*a=*/i);
  }
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.total(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);

  const std::vector<FlightRecord> window = rec.SnapshotRecords();
  ASSERT_EQ(window.size(), 8u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].a, 12 + i) << "oldest-first, seq " << window[i].seq;
    EXPECT_EQ(window[i].seq, 12 + i);
    EXPECT_EQ(window[i].shard, 3);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(0, /*capacity=*/100);
  EXPECT_EQ(rec.capacity(), 128u);
}

TEST(FlightRecorderHub, TriggerLatchesFirstReason) {
  FlightRecorderHub hub(/*shards=*/2, /*capacity_per_shard=*/16);
  EXPECT_FALSE(hub.triggered());
  EXPECT_TRUE(hub.Trigger("first failure"));
  EXPECT_FALSE(hub.Trigger("second failure"));
  EXPECT_STREQ(hub.reason(), "first failure");

  // Recorder-level Trigger (the kernels' path) reaches the same latch.
  hub.ResetTrigger();
  EXPECT_TRUE(hub.recorder(1).Trigger("watchdog adopt"));
  EXPECT_STREQ(hub.reason(), "watchdog adopt");

  // A standalone recorder has no hub to latch.
  FlightRecorder lone(0, 8);
  EXPECT_FALSE(lone.Trigger("nowhere to go"));
}

TEST(FlightRecorderHub, MergedOrdersByTimeShardSeq) {
  std::uint64_t tick = 0;
  FlightRecorderHub hub(/*shards=*/2, /*capacity_per_shard=*/16);
  hub.SetClockAll(&CountingClock, &tick);
  // Interleave writers so timestamps alternate between shards.
  hub.recorder(0).Record(FrEvent::kParkBegin);       // t=0
  hub.recorder(1).Record(FrEvent::kMailboxPush, 0);  // t=1
  hub.recorder(0).Record(FrEvent::kParkEnd, 1);      // t=2
  hub.recorder(1).Record(FrEvent::kDrainBatch, 4);   // t=3

  const std::vector<FlightRecord> merged = hub.Merged();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].t_ns, merged[i].t_ns);
  }
  EXPECT_EQ(merged[0].shard, 0);
  EXPECT_EQ(merged[1].shard, 1);
  EXPECT_EQ(merged[2].type, FrEvent::kParkEnd);
}

TEST(FlightRecorder, DumpsAreDeterministic) {
  auto build = [] {
    std::uint64_t tick = 1000;
    FlightRecorderHub hub(2, 8);
    hub.SetClockAll(&CountingClock, &tick);
    hub.recorder(0).Record(FrEvent::kMailboxPush, 1);
    hub.recorder(1).Record(FrEvent::kBackpressure, 0, 17);
    hub.recorder(0).Record(FrEvent::kMigrationPhase,
                           static_cast<std::uint64_t>(FrMigrationEdge::kAccepted), 42);
    hub.Trigger("invariant failure");
    return hub.Merged();
  };
  const std::vector<FlightRecord> a = build();
  const std::vector<FlightRecord> b = build();

  std::ostringstream text_a;
  std::ostringstream text_b;
  WriteFlightText(a, "invariant failure", text_a);
  WriteFlightText(b, "invariant failure", text_b);
  EXPECT_EQ(text_a.str(), text_b.str());
  EXPECT_NE(text_a.str().find("invariant failure"), std::string::npos);
  EXPECT_NE(text_a.str().find(FrEventName(FrEvent::kBackpressure)), std::string::npos);

  std::ostringstream trace_a;
  std::ostringstream trace_b;
  WriteFlightChromeTrace(a, trace_a);
  WriteFlightChromeTrace(b, trace_b);
  EXPECT_EQ(trace_a.str(), trace_b.str());
  EXPECT_NE(trace_a.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_a.str().find(FrMigrationEdgeName(FrMigrationEdge::kAccepted)),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Legacy fold + aliases.
// ---------------------------------------------------------------------------

TEST(BuildSnapshot, FoldsLegacyRegistriesWithoutDoubleCounting) {
  StatsRegistry kernel0;
  StatsRegistry kernel1;
  kernel0.Add("msgs_sent", 7);
  kernel1.Add("msgs_sent", 5);
  kernel1.Add("msgs_forwarded", 2);

  const MetricsSnapshot snap = BuildSnapshot(nullptr, {&kernel0, &kernel1});
  ASSERT_EQ(snap.kernel_counters.size(), 2u);
  EXPECT_EQ(snap.kernel_counters[0].at("kernel.msgs_sent"), 7);
  EXPECT_EQ(snap.kernel_counters[1].at("kernel.msgs_sent"), 5);
  // The total is the per-shard sum, folded exactly once.
  EXPECT_EQ(snap.kernel_total.at("kernel.msgs_sent"), 12);
  EXPECT_EQ(snap.kernel_total.at("kernel.msgs_forwarded"), 2);
  // No runtime engine attached: no shard slabs.
  EXPECT_TRUE(snap.shards.empty());
}

TEST(BuildSnapshot, LegacyAliasTableCoversRenames) {
  const auto& aliases = LegacyAliases();
  ASSERT_FALSE(aliases.empty());
  auto it = aliases.find("msgs_sent");
  ASSERT_NE(it, aliases.end());
  EXPECT_EQ(it->second, "kernel.msgs_sent");
  // Payload counters fold under the payload. prefix.
  bool has_payload = false;
  for (const auto& [old_name, new_name] : aliases) {
    EXPECT_TRUE(new_name.rfind("kernel.", 0) == 0 || new_name.rfind("payload.", 0) == 0)
        << old_name << " -> " << new_name;
    has_payload = has_payload || new_name.rfind("payload.", 0) == 0;
  }
  EXPECT_TRUE(has_payload);
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

TEST(MetricsExport, JsonCarriesSchemaSeriesAndAliases) {
  MetricsEngine engine(2);
  engine.shard(0).Inc(CounterId::kMailboxPushes, 3);
  engine.shard(1).Observe(HistogramId::kParkWaitUs, 150);

  MetricsTimeSeries series;
  series.interval_seconds = 0.01;
  MetricsSample sample;
  sample.t_seconds = 0.01;
  sample.snapshot = engine.Snapshot();
  series.samples.push_back(sample);
  series.final_snapshot = BuildSnapshot(&engine);

  std::ostringstream os;
  WriteMetricsJson(series, os);
  const std::string json = os.str();
  EXPECT_NE(json.find(kMetricsSchemaV1), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"final\""), std::string::npos);
  EXPECT_NE(json.find("\"aliases\""), std::string::npos);
  EXPECT_NE(json.find(CounterName(CounterId::kMailboxPushes)), std::string::npos);
  EXPECT_NE(json.find(HistogramName(HistogramId::kParkWaitUs)), std::string::npos);
}

TEST(MetricsExport, PrometheusTextHasShardLabelsAndCumulativeBuckets) {
  MetricsEngine engine(2);
  engine.shard(0).Inc(CounterId::kMsgsDrained, 9);
  engine.shard(1).Set(GaugeId::kSpillDepth, 4);
  engine.shard(0).Observe(HistogramId::kDrainBatchSize, 2);

  std::ostringstream os;
  WritePrometheusText(BuildSnapshot(&engine), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("demos_msgs_drained_total{shard=\"0\"} 9"), std::string::npos);
  EXPECT_NE(text.find("demos_spill_depth{shard=\"1\"} 4"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler.
// ---------------------------------------------------------------------------

TEST(MetricsSampler, CollectsPeriodicSamplesAndRunsCollector) {
  MetricsEngine engine(1);
  std::atomic<bool> stop{false};
  std::thread writer([&engine, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      engine.shard(0).Inc(CounterId::kEventsExecuted);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::atomic<int> collector_runs{0};
  MetricsSampler sampler(&engine, std::chrono::milliseconds(2));
  sampler.SetCollector([&collector_runs] { collector_runs.fetch_add(1); });
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  stop.store(true, std::memory_order_release);
  writer.join();

  const MetricsTimeSeries series = sampler.TakeSeries();
  ASSERT_FALSE(series.samples.empty());
  EXPECT_GT(collector_runs.load(), 0);
  // Time and counters are monotone across samples.
  for (std::size_t i = 1; i < series.samples.size(); ++i) {
    EXPECT_GE(series.samples[i].t_seconds, series.samples[i - 1].t_seconds);
    EXPECT_GE(
        series.samples[i].snapshot.total.counters[static_cast<int>(CounterId::kEventsExecuted)],
        series.samples[i - 1]
            .snapshot.total.counters[static_cast<int>(CounterId::kEventsExecuted)]);
  }
  EXPECT_GE(series.final_snapshot.total.counters[static_cast<int>(CounterId::kEventsExecuted)],
            series.samples.back()
                .snapshot.total.counters[static_cast<int>(CounterId::kEventsExecuted)]);
}

// ---------------------------------------------------------------------------
// Clock normalization.
// ---------------------------------------------------------------------------

TraceEvent EventAt(MachineId machine, SimTime ts, const char* name) {
  TraceEvent ev;
  ev.ts = ts;
  ev.machine = machine;
  ev.category = trace::kMessage;
  ev.name = name;
  return ev;
}

TEST(NormalizeShardClocks, RebasesSkewedShardsOntoOneAxis) {
  // Shard 1's thread started 1ms of real time after shard 0, but both virtual
  // clocks read 100us when their events fired.  Raw merge would interleave
  // them as simultaneous; normalization must put shard 1's event 1ms later.
  const std::vector<ClockSyncPoint> syncs = {
      {/*machine=*/0, /*virt_us=*/0, /*real_ns=*/1'000'000},
      {/*machine=*/1, /*virt_us=*/0, /*real_ns=*/2'000'000},
  };
  const std::vector<TraceEvent> events = {
      EventAt(0, 100, "a"),
      EventAt(1, 100, "b"),
  };
  const std::vector<TraceEvent> out = NormalizeShardClocks(events, syncs);
  ASSERT_EQ(out.size(), 2u);
  // Epoch = shard 0's first sync; 1:1 extrapolation past the single point.
  EXPECT_EQ(out[0].ts, 100u);
  EXPECT_STREQ(out[0].name, "a");
  EXPECT_EQ(out[1].ts, 1100u);
  EXPECT_STREQ(out[1].name, "b");
}

TEST(NormalizeShardClocks, InterpolatesBetweenSyncPoints) {
  // Shard 0's virtual clock ran at half real speed between the two syncs:
  // 1000 virtual us spanned 2000 real us.
  const std::vector<ClockSyncPoint> syncs = {
      {0, 0, 1'000'000},
      {0, 1000, 3'000'000},
  };
  const std::vector<TraceEvent> events = {EventAt(0, 500, "mid")};
  const std::vector<TraceEvent> out = NormalizeShardClocks(events, syncs);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ts, 1000u);  // (2'000'000ns - epoch) / 1000
}

TEST(NormalizeShardClocks, MachinesWithoutSyncsPassThrough) {
  const std::vector<ClockSyncPoint> syncs = {{0, 0, 5'000'000}};
  const std::vector<TraceEvent> events = {EventAt(7, 42, "lonely")};
  const std::vector<TraceEvent> out = NormalizeShardClocks(events, syncs);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ts, 42u);
}

// ---------------------------------------------------------------------------
// End-to-end: a real parallel run populates the metrics, the flight
// recorder, and normalized traces.
// ---------------------------------------------------------------------------

class ObservabilityIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterWorkloadPrograms(); }
};

TEST_F(ObservabilityIntegrationTest, ParallelRunPopulatesMetricsAndRecorder) {
  ParallelClusterConfig pc;
  pc.machines = 2;
  pc.trace_enabled = true;
  ParallelCluster cluster(pc);

  TokenRingSpec spec;
  spec.rings = 2;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 1;
  spec.hops_per_token = 50;
  const std::vector<TokenRing> rings = BuildTokenRings(cluster, spec);
  ASSERT_FALSE(rings.empty());
  KickTokenRings(cluster, rings, spec.tokens_per_node, spec.hops_per_token);
  ASSERT_TRUE(cluster.RunUntilQuiescent(std::chrono::milliseconds(30000)));
  cluster.RefreshDepthGauges();
  cluster.Stop();

  ASSERT_NE(cluster.metrics(), nullptr);
  const MetricsSnapshot snap = BuildSnapshot(cluster.metrics(), cluster.KernelStats());
  ASSERT_EQ(static_cast<int>(snap.shards.size()), 2 + 1);  // shards + coordinator
  const auto total = [&snap](CounterId id) {
    return snap.total.counters[static_cast<int>(id)];
  };
  EXPECT_GT(total(CounterId::kMailboxPushes), 0u);
  EXPECT_GT(total(CounterId::kMsgsDrained), 0u);
  EXPECT_GT(total(CounterId::kEventsExecuted), 0u);
  EXPECT_GT(total(CounterId::kSchedulerRounds), 0u);
  EXPECT_GT(total(CounterId::kQuiescencePolls), 0u);
  EXPECT_GT(total(CounterId::kQuiescenceVotes), 0u);
  // Quiescent cluster: all depth gauges drained to zero.
  EXPECT_EQ(snap.total.gauges[static_cast<int>(GaugeId::kMailboxDepth)], 0);
  EXPECT_EQ(snap.total.gauges[static_cast<int>(GaugeId::kSpillDepth)], 0);
  // Kernel registries folded alongside.
  EXPECT_GT(snap.kernel_total.at("kernel.msgs_sent"), 0);

  // The always-on recorder saw mailbox traffic but nothing latched a trigger.
  ASSERT_NE(cluster.flight_recorder(), nullptr);
  EXPECT_FALSE(cluster.flight_recorder()->triggered());
  const std::vector<FlightRecord> merged = cluster.flight_recorder()->Merged();
  EXPECT_FALSE(merged.empty());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].t_ns, merged[i].t_ns);
  }

  // Normalized trace: non-empty, time-sorted, every shard present.
  const Tracer normalized = cluster.TotalTraceNormalized();
  const std::vector<TraceEvent>& events = normalized.events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts);
  }
}

TEST_F(ObservabilityIntegrationTest, FailingChaosSeedCarriesDeterministicFlightDump) {
  // Plant the check_test forwarding bug, find a seed that catches it, and
  // confirm the failing run carries a latched, merged flight-recorder window
  // -- the payload chaos_fuzz writes as seed_N.flightrec.* artifacts.  The
  // recorder is stamped with the virtual clock, so two replays of the same
  // seed must dump byte-identically.
  ChaosOptions broken;
  broken.collect_trace = false;
  ChaosScenario failing;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
    const ChaosScenario scenario = ScenarioFromSeed(seed);
    if (!scenario.forwarding_mode || scenario.migrations.size() < 4) {
      continue;
    }
    broken.forward_fault = [machines = scenario.machines](Message& msg) {
      msg.receiver.last_known_machine =
          static_cast<MachineId>((msg.receiver.last_known_machine + 1) % machines);
    };
    if (!RunScenario(scenario, broken).ok()) {
      failing = scenario;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..64 caught the planted forwarding bug";

  const ChaosResult a = RunScenario(failing, broken);
  const ChaosResult b = RunScenario(failing, broken);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(a.flight.empty());
  ASSERT_NE(a.flight_trigger, nullptr);
  EXPECT_STREQ(a.flight_trigger, "invariant failure");
  EXPECT_TRUE(std::any_of(a.flight.begin(), a.flight.end(), [](const FlightRecord& r) {
    return r.type == FrEvent::kInvariantFail;
  }));

  std::ostringstream dump_a;
  std::ostringstream dump_b;
  WriteFlightText(a.flight, a.flight_trigger, dump_a);
  WriteFlightText(b.flight, b.flight_trigger, dump_b);
  EXPECT_EQ(dump_a.str(), dump_b.str()) << "flight dump not deterministic across replays";
}

TEST_F(ObservabilityIntegrationTest, DisabledConfigRunsWithNullEngines) {
  ParallelClusterConfig pc;
  pc.machines = 2;
  pc.metrics_enabled = false;
  pc.flight_recorder_enabled = false;
  ParallelCluster cluster(pc);

  TokenRingSpec spec;
  spec.rings = 1;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 1;
  spec.hops_per_token = 20;
  const std::vector<TokenRing> rings = BuildTokenRings(cluster, spec);
  ASSERT_FALSE(rings.empty());
  KickTokenRings(cluster, rings, spec.tokens_per_node, spec.hops_per_token);
  EXPECT_TRUE(cluster.RunUntilQuiescent(std::chrono::milliseconds(30000)));
  cluster.RefreshDepthGauges();  // must be a safe no-op
  cluster.Stop();
  EXPECT_EQ(cluster.metrics(), nullptr);
  EXPECT_EQ(cluster.flight_recorder(), nullptr);
}

}  // namespace
}  // namespace demos
