// Tests for the move-data facility (Sec. 2.2, 6): streamed packet transfers
// into and out of process data areas over DELIVERTOKERNEL links.

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace demos {
namespace {

constexpr MsgType kDoWrite = static_cast<MsgType>(1020);
constexpr MsgType kDoRead = static_cast<MsgType>(1021);

std::vector<DataMoveResult>& MoveResults() {
  static std::vector<DataMoveResult> results;
  return results;
}

// Drives MoveDataTo / MoveDataFrom against a data-area link carried in the
// triggering message; completions land in MoveResults().
class AreaClientProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.carried_links.empty()) {
      return;
    }
    const LinkId link = ctx.AddLink(msg.carried_links[0]);
    ByteReader r(msg.payload);
    if (msg.type == kDoWrite) {
      const std::uint32_t offset = r.U32();
      const std::uint64_t cookie = r.U64();
      Status s = ctx.MoveDataTo(link, offset, r.Blob(), cookie);
      if (!s.ok()) {
        MoveResults().push_back({.cookie = cookie, .status = s, .data = {}});
      }
    } else if (msg.type == kDoRead) {
      const std::uint32_t offset = r.U32();
      const std::uint32_t length = r.U32();
      const std::uint64_t cookie = r.U64();
      Status s = ctx.MoveDataFrom(link, offset, length, cookie);
      if (!s.ok()) {
        MoveResults().push_back({.cookie = cookie, .status = s, .data = {}});
      }
    }
  }

  void OnDataMoveDone(Context& ctx, const DataMoveResult& result) override {
    MoveResults().push_back(result);
  }
};

class DataMoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    static const bool registered = [] {
      ProgramRegistry::Instance().Register(
          "area_client", [] { return std::make_unique<AreaClientProgram>(); });
      return true;
    }();
    (void)registered;
    MoveResults().clear();
  }

  Link DataLink(const ProcessAddress& target, std::uint8_t flags, std::uint32_t offset,
                std::uint32_t length) {
    Link l;
    l.address = target;
    l.flags = flags;
    l.data_offset = offset;
    l.data_length = length;
    return l;
  }
};

TEST_F(DataMoverTest, WriteIntoRemoteArea) {
  ClusterConfig config;
  config.machines = 2;
  config.kernel.data_packet_bytes = 64;
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  Bytes data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ByteWriter w;
  w.U32(16);  // area offset within the window
  w.U64(111);
  w.Blob(data);
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataWrite, 100, 1000)});
  cluster.RunUntilIdle();

  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(MoveResults()[0].cookie, 111u);
  ProcessRecord* record = cluster.kernel(1).FindProcess(host->pid);
  EXPECT_EQ(record->memory.ReadData(116, 300), data);
  // 300 bytes in 64-byte chunks = 5 packets; with the default ack window (8)
  // the whole stream is covered by one cumulative ack, flushed by the final
  // packet.
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kDataPackets), 5);
  EXPECT_EQ(cluster.kernel(1).stats().Get(stat::kDataAcks), 1);
}

TEST_F(DataMoverTest, WindowOneDegeneratesToOneAckPerPacket) {
  // data_window_packets = 1 reproduces the paper's per-packet acknowledgement
  // behavior exactly: same bytes land, one ack per packet.
  ClusterConfig config;
  config.machines = 2;
  config.kernel.data_packet_bytes = 64;
  config.kernel.data_window_packets = 1;
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  Bytes data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ByteWriter w;
  w.U32(16);
  w.U64(112);
  w.Blob(data);
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataWrite, 100, 1000)});
  cluster.RunUntilIdle();

  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(cluster.kernel(1).FindProcess(host->pid)->memory.ReadData(116, 300), data);
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kDataPackets), 5);
  EXPECT_EQ(cluster.kernel(1).stats().Get(stat::kDataAcks), 5);
}

TEST_F(DataMoverTest, ZeroLengthWriteCompletes) {
  // An empty transfer is one empty packet and one ack; completion must still
  // reach the instigator (the >= 1 acked-packets rule).
  Cluster cluster(ClusterConfig{});
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  ByteWriter w;
  w.U32(0);
  w.U64(991);
  w.Blob({});
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataWrite, 0, 1024)});
  cluster.RunUntilIdle();
  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(MoveResults()[0].cookie, 991u);
}

TEST_F(DataMoverTest, ZeroLengthReadCompletes) {
  Cluster cluster(ClusterConfig{});
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  ByteWriter w;
  w.U32(0);
  w.U32(0);  // zero-length read
  w.U64(992);
  cluster.kernel(0).SendFromKernel(*client, kDoRead, w.Take(),
                                   {DataLink(*host, kLinkDataRead, 0, 1024)});
  cluster.RunUntilIdle();
  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_TRUE(MoveResults()[0].data.empty());
}

TEST_F(DataMoverTest, FinalShortChunkCarriesExactBytes) {
  // 130 bytes in 64-byte packets: 64 + 64 + 2.  The 2-byte tail must land at
  // the right offset and the cumulative ack must cover exactly 130 bytes
  // (completion would hang or fire early otherwise).
  ClusterConfig config;
  config.machines = 2;
  config.kernel.data_packet_bytes = 64;
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  Bytes data(130);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(255 - i);
  }
  ByteWriter w;
  w.U32(0);
  w.U64(993);
  w.Blob(data);
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataWrite, 0, 1024)});
  cluster.RunUntilIdle();

  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(cluster.kernel(0).stats().Get(stat::kDataPackets), 3);
  EXPECT_EQ(cluster.kernel(1).FindProcess(host->pid)->memory.ReadData(0, 130), data);
}

TEST_F(DataMoverTest, PushStraddlingMigrationSnapshotStaysExact) {
  // Start a long push, then migrate the target mid-stream.  Early packets are
  // applied on m1 (and travel onward inside the memory image); packets
  // arriving after the freeze are queued and forwarded to m2.  The freeze
  // flushes m1's partial ack batch, so the instigator's byte accounting -- and
  // therefore completion -- stays exact across the snapshot.
  ClusterConfig config;
  config.machines = 3;
  config.kernel.data_packet_bytes = 64;
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  Bytes data(2000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  ByteWriter w;
  w.U32(0);
  w.U64(994);
  w.Blob(data);
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataWrite, 0, 4000)});
  // Let part of the 32-packet stream land on m1, then freeze the target.
  cluster.RunFor(1500);
  (void)cluster.kernel(1).StartMigration(host->pid, 2, cluster.kernel(1).kernel_address());
  cluster.RunUntilIdle();

  ASSERT_NE(cluster.kernel(2).FindProcess(host->pid), nullptr);
  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(MoveResults()[0].cookie, 994u);
  EXPECT_EQ(cluster.kernel(2).FindProcess(host->pid)->memory.ReadData(0, 2000), data);
  // The stream really did straddle the snapshot: both kernels acked packets.
  EXPECT_GT(cluster.kernel(1).stats().Get(stat::kDataAcks), 0);
  EXPECT_GT(cluster.kernel(2).stats().Get(stat::kDataAcks), 0);
}

TEST_F(DataMoverTest, ReadFromRemoteArea) {
  ClusterConfig config;
  config.machines = 2;
  config.kernel.data_packet_bytes = 128;
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  Bytes content(500);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::uint8_t>(i * 3);
  }
  ASSERT_TRUE(
      cluster.kernel(1).FindProcess(host->pid)->memory.WriteData(200, content).ok());

  ByteWriter w;
  w.U32(0);    // area offset
  w.U32(500);  // length
  w.U64(222);
  cluster.kernel(0).SendFromKernel(*client, kDoRead, w.Take(),
                                   {DataLink(*host, kLinkDataRead, 200, 500)});
  cluster.RunUntilIdle();

  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(MoveResults()[0].data, content);
}

TEST_F(DataMoverTest, WriteWithoutPermissionFailsLocally) {
  Cluster cluster(ClusterConfig{});
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle");
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  ByteWriter w;
  w.U32(0);
  w.U64(333);
  w.Blob({1, 2, 3});
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataRead, 0, 100)});  // read-only
  cluster.RunUntilIdle();
  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_EQ(MoveResults()[0].status.code(), StatusCode::kPermissionDenied);
}

TEST_F(DataMoverTest, ReadBeyondWindowFailsLocally) {
  Cluster cluster(ClusterConfig{});
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle");
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  ByteWriter w;
  w.U32(50);
  w.U32(100);  // 50 + 100 > window of 100
  w.U64(444);
  cluster.kernel(0).SendFromKernel(*client, kDoRead, w.Take(),
                                   {DataLink(*host, kLinkDataRead, 0, 100)});
  cluster.RunUntilIdle();
  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_EQ(MoveResults()[0].status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DataMoverTest, WindowOutsideDataSegmentFailsRemotely) {
  Cluster cluster(ClusterConfig{});
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 256, 256);  // small data seg
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  ByteWriter w;
  w.U32(0);
  w.U32(100);
  w.U64(555);
  // Window claims [1000, 2000) but the data segment is only 256 bytes.
  cluster.kernel(0).SendFromKernel(*client, kDoRead, w.Take(),
                                   {DataLink(*host, kLinkDataRead, 1000, 1000)});
  cluster.RunUntilIdle();
  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_FALSE(MoveResults()[0].status.ok());
}

TEST_F(DataMoverTest, PushChasesMigratedProcess) {
  // The write stream is DELIVERTOKERNEL: if the target migrated, the packets
  // follow the forwarding address and are applied on the new machine
  // (Sec. 2.2: "without the kernel that instigated the operation being aware
  // of the process's location").
  ClusterConfig config;
  config.machines = 3;
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();

  // Move the host to m2; the client still holds a link saying m1.
  testutil::MigrateAndSettle(cluster, host->pid, 1, 2);
  ASSERT_NE(cluster.kernel(2).FindProcess(host->pid), nullptr);

  Bytes data(200, 0xAB);
  ByteWriter w;
  w.U32(0);
  w.U64(666);
  w.Blob(data);
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataWrite, 0, 1024)});
  cluster.RunUntilIdle();

  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(cluster.kernel(2).FindProcess(host->pid)->memory.ReadData(0, 200), data);
}

TEST_F(DataMoverTest, ReadAnnounceChasesMigratedProcess) {
  ClusterConfig config;
  config.machines = 3;
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 4096, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, host->pid, 1, 2);

  Bytes content(64, 0x5C);
  ASSERT_TRUE(cluster.kernel(2).FindProcess(host->pid)->memory.WriteData(0, content).ok());

  ByteWriter w;
  w.U32(0);
  w.U32(64);
  w.U64(777);
  cluster.kernel(0).SendFromKernel(*client, kDoRead, w.Take(),
                                   {DataLink(*host, kLinkDataRead, 0, 64)});
  cluster.RunUntilIdle();
  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  EXPECT_EQ(MoveResults()[0].data, content);
}

// Packet-size sweep: transfers complete for any chunking, and the packet
// count is ceil(size / chunk).
class PacketSizeSweep : public DataMoverTest,
                        public ::testing::WithParamInterface<std::size_t> {};

TEST_P(PacketSizeSweep, TransferCompletesWithExpectedPacketCount) {
  ClusterConfig config;
  config.machines = 2;
  config.kernel.data_packet_bytes = GetParam();
  Cluster cluster(config);
  auto client = cluster.kernel(0).SpawnProcess("area_client");
  auto host = cluster.kernel(1).SpawnProcess("idle", 1024, 8192, 256);
  ASSERT_TRUE(client.ok() && host.ok());
  cluster.RunUntilIdle();
  const std::int64_t packets_before = cluster.kernel(0).stats().Get(stat::kDataPackets);

  Bytes data(3000, 0x11);
  ByteWriter w;
  w.U32(0);
  w.U64(1);
  w.Blob(data);
  cluster.kernel(0).SendFromKernel(*client, kDoWrite, w.Take(),
                                   {DataLink(*host, kLinkDataWrite, 0, 8000)});
  cluster.RunUntilIdle();

  ASSERT_EQ(MoveResults().size(), 1u);
  EXPECT_TRUE(MoveResults()[0].status.ok());
  const std::int64_t packets = cluster.kernel(0).stats().Get(stat::kDataPackets) - packets_before;
  EXPECT_EQ(packets, static_cast<std::int64_t>((3000 + GetParam() - 1) / GetParam()));
  EXPECT_EQ(cluster.kernel(1).FindProcess(host->pid)->memory.ReadData(0, 3000), data);
}

INSTANTIATE_TEST_SUITE_P(Chunks, PacketSizeSweep,
                         ::testing::Values(16, 64, 128, 512, 1024, 4096));

}  // namespace
}  // namespace demos
