// Tests for links and the per-process link table (Sec. 2.1, Fig. 2-1).

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/kernel/link.h"

namespace demos {
namespace {

Link MakeTestLink(MachineId machine, std::uint32_t local_id, std::uint8_t flags = kLinkNone) {
  Link l;
  l.address = ProcessAddress{machine, {machine, local_id}};
  l.flags = flags;
  return l;
}

TEST(LinkTest, FlagPredicates) {
  Link l = MakeTestLink(0, 1, kLinkDeliverToKernel | kLinkReply);
  EXPECT_TRUE(l.deliver_to_kernel());
  EXPECT_TRUE(l.reply_link());
  EXPECT_FALSE(l.data_read());
  EXPECT_FALSE(l.data_write());
}

TEST(LinkTest, SerializedSizeMatchesConstant) {
  Link l = MakeTestLink(2, 7, kLinkDataRead);
  l.data_offset = 128;
  l.data_length = 512;
  ByteWriter w;
  l.Serialize(w);
  EXPECT_EQ(w.size(), kLinkWireSize);
}

TEST(LinkTest, RoundTrip) {
  Link l = MakeTestLink(3, 11, kLinkDataRead | kLinkDataWrite);
  l.data_offset = 64;
  l.data_length = 256;
  ByteWriter w;
  l.Serialize(w);
  ByteReader r(w.bytes());
  Link back = Link::Deserialize(r);
  EXPECT_EQ(back, l);
  EXPECT_TRUE(r.ok());
}

TEST(LinkTableTest, InsertAssignsSlots) {
  LinkTable t;
  EXPECT_EQ(t.Insert(MakeTestLink(0, 1)), 0u);
  EXPECT_EQ(t.Insert(MakeTestLink(0, 2)), 1u);
  EXPECT_EQ(t.LiveCount(), 2u);
}

TEST(LinkTableTest, GetReturnsInserted) {
  LinkTable t;
  const Link l = MakeTestLink(1, 5);
  LinkId id = t.Insert(l);
  ASSERT_NE(t.Get(id), nullptr);
  EXPECT_EQ(*t.Get(id), l);
  EXPECT_EQ(t.Get(99), nullptr);
}

TEST(LinkTableTest, RemoveFreesSlotForReuse) {
  LinkTable t;
  LinkId a = t.Insert(MakeTestLink(0, 1));
  t.Insert(MakeTestLink(0, 2));
  EXPECT_TRUE(t.Remove(a).ok());
  EXPECT_EQ(t.Get(a), nullptr);
  EXPECT_EQ(t.Insert(MakeTestLink(0, 3)), a);  // slot reused
  EXPECT_FALSE(t.Remove(77).ok());
}

TEST(LinkTableTest, UpdateAddressesPatchesOnlyMatchingPid) {
  LinkTable t;
  const ProcessId target{0, 9};
  Link stale1;
  stale1.address = ProcessAddress{0, target};
  Link stale2;
  stale2.address = ProcessAddress{0, target};
  Link other = MakeTestLink(0, 3);
  LinkId s1 = t.Insert(stale1);
  LinkId s2 = t.Insert(stale2);
  LinkId o = t.Insert(other);

  EXPECT_EQ(t.UpdateAddresses(target, 4), 2);
  EXPECT_EQ(t.Get(s1)->address.last_known_machine, 4);
  EXPECT_EQ(t.Get(s2)->address.last_known_machine, 4);
  EXPECT_EQ(t.Get(o)->address.last_known_machine, 0);
  // Unique id never changes (Fig. 2-1).
  EXPECT_EQ(t.Get(s1)->address.pid, target);
}

TEST(LinkTableTest, UpdateIsIdempotent) {
  LinkTable t;
  const ProcessId target{0, 9};
  Link l;
  l.address = ProcessAddress{0, target};
  t.Insert(l);
  EXPECT_EQ(t.UpdateAddresses(target, 4), 1);
  EXPECT_EQ(t.UpdateAddresses(target, 4), 0);  // already current
}

TEST(LinkTableTest, SerializeRoundTripPreservesHoles) {
  LinkTable t;
  t.Insert(MakeTestLink(0, 1));
  LinkId mid = t.Insert(MakeTestLink(0, 2, kLinkDataWrite));
  t.Insert(MakeTestLink(1, 3, kLinkDeliverToKernel));
  ASSERT_TRUE(t.Remove(mid).ok());

  ByteWriter w;
  t.Serialize(w);
  ByteReader r(w.bytes());
  LinkTable back = LinkTable::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back.SlotCount(), t.SlotCount());
  EXPECT_EQ(back.LiveCount(), 2u);
  EXPECT_EQ(back.Get(mid), nullptr);
  ASSERT_NE(back.Get(0), nullptr);
  EXPECT_EQ(back.Get(0)->address.pid, (ProcessId{0, 1}));
  ASSERT_NE(back.Get(2), nullptr);
  EXPECT_TRUE(back.Get(2)->deliver_to_kernel());
}

TEST(LinkTableTest, SwappableSizeGrowsWithLinkCount) {
  // Sec. 6: swappable state is ~600 bytes "depending on the size of the link
  // table".  Confirm the serialized table grows linearly.
  LinkTable small;
  LinkTable big;
  for (int i = 0; i < 2; ++i) {
    small.Insert(MakeTestLink(0, static_cast<std::uint32_t>(i + 1)));
  }
  for (int i = 0; i < 30; ++i) {
    big.Insert(MakeTestLink(0, static_cast<std::uint32_t>(i + 1)));
  }
  ByteWriter ws;
  small.Serialize(ws);
  ByteWriter wb;
  big.Serialize(wb);
  EXPECT_EQ(wb.size() - ws.size(), 28 * (kLinkWireSize + 1));
}

}  // namespace
}  // namespace demos
