// File-system stack tests (Sec. 2.3): the four FS processes cooperating, with
// file bytes moving over data-area links.

#include <gtest/gtest.h>

#include "src/sys/fs/buffer_manager.h"
#include "src/sys/fs/request_interpreter.h"
#include "tests/sys_test_util.h"

namespace demos {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterSystemPrograms();
    GlobalCapture().clear();
  }

  // Spawn a configured fs_client on `machine` and return its address.
  ProcessAddress SpawnClient(Cluster& cluster, MachineId machine,
                             const FsClientConfig& config) {
    auto client = cluster.kernel(machine).SpawnProcess(
        "fs_client", 4096, kFsClientBufferOffset + config.io_size + 64, 2048);
    EXPECT_TRUE(client.ok());
    testutil::ConfigureFsClient(cluster, *client, config);
    return *client;
  }

  bool WaitDone(Cluster& cluster, const ProcessId& pid, SimDuration max_us = 20'000'000) {
    return testutil::RunUntil(
        cluster, [&] { return testutil::ReadFsClientResults(cluster, pid).done != 0; },
        max_us);
  }
};

TEST_F(FsTest, WriteThenReadRoundTrip) {
  Cluster cluster(ClusterConfig{.machines = 2});
  SystemLayout layout = BootSystem(cluster);

  FsClientConfig config;
  config.mode = 2;  // alternate write/read over the same offsets
  config.io_size = 1024;
  config.op_count = 8;
  config.think_us = 500;
  config.file_name = "roundtrip";
  ProcessAddress client = SpawnClient(cluster, 1, config);

  ASSERT_TRUE(WaitDone(cluster, client.pid));
  FsClientResults results = testutil::ReadFsClientResults(cluster, client.pid);
  EXPECT_EQ(results.completed, 8u);
  EXPECT_EQ(results.errors, 0u);
  EXPECT_GT(results.total_latency_us, 0u);
  (void)layout;
}

TEST_F(FsTest, ReadBackSeesWrittenPattern) {
  Cluster cluster(ClusterConfig{.machines = 2});
  BootSystem(cluster);

  // Alternate mode writes pattern (op_index + i) then reads the same offset;
  // verify the final buffer contents equal the pattern of the last write.
  FsClientConfig config;
  config.mode = 2;
  config.io_size = 700;  // deliberately not sector-aligned
  config.op_count = 2;   // one write (op 0), one read (op 1)
  config.think_us = 100;
  config.file_name = "pattern";
  ProcessAddress client = SpawnClient(cluster, 1, config);
  ASSERT_TRUE(WaitDone(cluster, client.pid));

  FsClientResults results = testutil::ReadFsClientResults(cluster, client.pid);
  ASSERT_EQ(results.errors, 0u);
  ProcessRecord* record = cluster.FindProcessAnywhere(client.pid);
  Bytes buffer = record->memory.ReadData(kFsClientBufferOffset, config.io_size);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], static_cast<std::uint8_t>(0 + i)) << "at " << i;
  }
}

TEST_F(FsTest, UnalignedWritesPreserveNeighbours) {
  // Two clients write adjacent unaligned ranges of one file; the partial-
  // sector read-merge-write path must not clobber either.
  Cluster cluster(ClusterConfig{.machines = 2});
  BootSystem(cluster);

  FsClientConfig config_a;
  config_a.mode = 1;  // write only
  config_a.io_size = 300;
  config_a.op_count = 4;
  config_a.think_us = 700;
  config_a.file_name = "shared";
  ProcessAddress a = SpawnClient(cluster, 1, config_a);
  ASSERT_TRUE(WaitDone(cluster, a.pid));

  FsClientConfig config_b = config_a;
  config_b.mode = 0;  // read back the same span
  ProcessAddress b = SpawnClient(cluster, 1, config_b);
  ASSERT_TRUE(WaitDone(cluster, b.pid));

  EXPECT_EQ(testutil::ReadFsClientResults(cluster, a.pid).errors, 0u);
  EXPECT_EQ(testutil::ReadFsClientResults(cluster, b.pid).errors, 0u);
  EXPECT_EQ(testutil::ReadFsClientResults(cluster, b.pid).completed, 4u);
}

TEST_F(FsTest, ManyConcurrentClients) {
  Cluster cluster(ClusterConfig{.machines = 4});
  BootSystem(cluster);

  std::vector<ProcessId> clients;
  for (int i = 0; i < 6; ++i) {
    FsClientConfig config;
    config.mode = 2;
    config.io_size = 512;
    config.op_count = 6;
    config.think_us = 300 + static_cast<std::uint64_t>(i) * 100;
    config.file_name = "file_" + std::to_string(i);
    clients.push_back(SpawnClient(cluster, static_cast<MachineId>(i % 4), config).pid);
  }
  for (const ProcessId& pid : clients) {
    ASSERT_TRUE(WaitDone(cluster, pid));
    FsClientResults results = testutil::ReadFsClientResults(cluster, pid);
    EXPECT_EQ(results.completed, 6u);
    EXPECT_EQ(results.errors, 0u);
  }
}

TEST_F(FsTest, BufferCacheHitsOnRepeatedReads) {
  Cluster cluster(ClusterConfig{.machines = 2});
  SystemLayout layout = BootSystem(cluster);

  FsClientConfig writer;
  writer.mode = 1;
  writer.io_size = 2048;
  writer.op_count = 2;
  writer.think_us = 200;
  writer.file_name = "cached";
  writer.file_span = 4096;
  ProcessAddress w = SpawnClient(cluster, 1, writer);
  ASSERT_TRUE(WaitDone(cluster, w.pid));

  FsClientConfig reader = writer;
  reader.mode = 0;
  reader.op_count = 8;  // re-reads the same 2 x 2048 B repeatedly
  ProcessAddress r = SpawnClient(cluster, 1, reader);
  ASSERT_TRUE(WaitDone(cluster, r.pid));

  BufferManagerProgram* buffers =
      testutil::ProgramOf<BufferManagerProgram>(cluster, layout.fs_buffers.pid);
  ASSERT_NE(buffers, nullptr);
  EXPECT_GT(buffers->hits(), 0);
  EXPECT_EQ(testutil::ReadFsClientResults(cluster, r.pid).errors, 0u);
}

TEST_F(FsTest, OpenOfMissingFileWithoutCreateFails) {
  Cluster cluster(ClusterConfig{.machines = 2});
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 9);

  ByteWriter w;
  w.Str("missing");
  w.U8(0);  // no create
  cluster.kernel(1).SendFromKernel(layout.fs_request, kFsOpen, w.Take(),
                                   {Link{*sink, kLinkReply, 0, 0}});
  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(9).empty(); }));
  ByteReader r(Bytes(testutil::CapturedFor(9)[0].payload));
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kNotFound);
}

TEST_F(FsTest, ReadOnBadHandleFails) {
  Cluster cluster(ClusterConfig{.machines = 2});
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 10);

  ByteWriter w;
  w.U32(999);  // bogus handle
  w.U32(0);
  w.U32(100);
  cluster.kernel(1).SendFromKernel(layout.fs_request, kFsRead, w.Take(),
                                   {Link{*sink, kLinkReply, 0, 0}});
  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(10).empty(); }));
  ByteReader r(Bytes(testutil::CapturedFor(10)[0].payload));
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kNotFound);
}

// Parameterized sweep over I/O sizes, including sector-straddling ones.
class FsIoSizeSweep : public FsTest, public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(FsIoSizeSweep, RoundTripAnySize) {
  Cluster cluster(ClusterConfig{.machines = 2});
  BootSystem(cluster);
  FsClientConfig config;
  config.mode = 2;
  config.io_size = GetParam();
  config.op_count = 4;
  config.think_us = 300;
  config.file_name = "sweep";
  ProcessAddress client = SpawnClient(cluster, 1, config);
  ASSERT_TRUE(WaitDone(cluster, client.pid));
  FsClientResults results = testutil::ReadFsClientResults(cluster, client.pid);
  EXPECT_EQ(results.completed, 4u);
  EXPECT_EQ(results.errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(IoSizes, FsIoSizeSweep,
                         ::testing::Values(1, 100, 511, 512, 513, 1000, 4096, 10'000));

}  // namespace
}  // namespace demos
