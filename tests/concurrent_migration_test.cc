// Concurrent-migration property tests: both ends of a conversation moving,
// migration storms, and interdomain autonomy (Sec. 3.2).

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace demos {
namespace {

constexpr MsgType kVolley = static_cast<MsgType>(1040);

// Ping-pong pair: on kVolley, increments data[0] and volleys back over the
// carried reply-style link until the payload counter reaches zero.
class PongerProgram : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != kVolley || msg.carried_links.empty() || msg.payload.empty()) {
      return;
    }
    ByteReader r(ctx.ReadData(0, 8));
    ByteWriter w;
    w.U64(r.U64() + 1);
    (void)ctx.WriteData(0, w.bytes());

    const std::uint8_t remaining = msg.payload[0];
    if (remaining == 0) {
      return;
    }
    // Volley back, carrying a link to ourselves for the next round.
    (void)ctx.SendOnLink(msg.carried_links[0], kVolley,
                         {static_cast<std::uint8_t>(remaining - 1)}, {ctx.MakeLink()});
  }
};

class ConcurrentMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    static const bool registered = [] {
      ProgramRegistry::Instance().Register(
          "ponger", [] { return std::make_unique<PongerProgram>(); });
      return true;
    }();
    (void)registered;
  }

  std::uint64_t CountOf(Cluster& cluster, const ProcessId& pid) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    if (record == nullptr) {
      return 0;
    }
    ByteReader r(record->memory.ReadData(0, 8));
    return r.U64();
  }
};

TEST_F(ConcurrentMigrationTest, BothEndsMigrateMidConversation) {
  Cluster cluster(ClusterConfig{.machines = 4});
  auto a = cluster.kernel(0).SpawnProcess("ponger");
  auto b = cluster.kernel(1).SpawnProcess("ponger");
  ASSERT_TRUE(a.ok() && b.ok());
  cluster.RunUntilIdle();

  // Kick off a 40-volley rally: A receives first.
  constexpr std::uint8_t kVolleys = 40;
  Link to_b;
  to_b.address = *b;
  Message kick;
  kick.sender = *b;
  kick.receiver = *a;
  kick.type = kVolley;
  kick.payload = {kVolleys};
  kick.carried_links = {to_b};
  cluster.kernel(1).Transmit(std::move(kick));

  // While the rally runs, migrate BOTH participants at staggered instants.
  cluster.queue().At(700, [&cluster, &a]() {
    (void)cluster.kernel(0).StartMigration(a->pid, 2, cluster.kernel(0).kernel_address());
  });
  cluster.queue().At(2100, [&cluster, &b]() {
    (void)cluster.kernel(1).StartMigration(b->pid, 3, cluster.kernel(1).kernel_address());
  });
  cluster.RunUntilIdle();

  // Every volley was handled exactly once, split across the pair.
  EXPECT_EQ(CountOf(cluster, a->pid) + CountOf(cluster, b->pid), kVolleys + 1u);
  EXPECT_EQ(cluster.HostOf(a->pid), 2);
  EXPECT_EQ(cluster.HostOf(b->pid), 3);
}

// Sweep both migration instants against each other.
class CrossMigrationSweep : public ConcurrentMigrationTest,
                            public ::testing::WithParamInterface<std::pair<int, int>> {};

TEST_P(CrossMigrationSweep, RallySurvivesAnyInterleaving) {
  Cluster cluster(ClusterConfig{.machines = 4});
  auto a = cluster.kernel(0).SpawnProcess("ponger");
  auto b = cluster.kernel(1).SpawnProcess("ponger");
  ASSERT_TRUE(a.ok() && b.ok());
  cluster.RunUntilIdle();

  constexpr std::uint8_t kVolleys = 24;
  Link to_b;
  to_b.address = *b;
  Message kick;
  kick.sender = *b;
  kick.receiver = *a;
  kick.type = kVolley;
  kick.payload = {kVolleys};
  kick.carried_links = {to_b};
  cluster.kernel(1).Transmit(std::move(kick));

  cluster.queue().At(static_cast<SimTime>(100 + GetParam().first * 317),
                     [&cluster, &a]() {
                       (void)cluster.kernel(0).StartMigration(
                           a->pid, 2, cluster.kernel(0).kernel_address());
                     });
  cluster.queue().At(static_cast<SimTime>(100 + GetParam().second * 317),
                     [&cluster, &b]() {
                       (void)cluster.kernel(1).StartMigration(
                           b->pid, 3, cluster.kernel(1).kernel_address());
                     });
  cluster.RunUntilIdle();
  EXPECT_EQ(CountOf(cluster, a->pid) + CountOf(cluster, b->pid), kVolleys + 1u)
      << "a@" << GetParam().first << " b@" << GetParam().second;
}

INSTANTIATE_TEST_SUITE_P(Interleavings, CrossMigrationSweep,
                         ::testing::Values(std::pair{0, 0}, std::pair{0, 5}, std::pair{5, 0},
                                           std::pair{3, 3}, std::pair{1, 9}, std::pair{9, 1},
                                           std::pair{7, 8}, std::pair{12, 2},
                                           std::pair{2, 12}, std::pair{15, 15}));

TEST_F(ConcurrentMigrationTest, MigrationStormConverges) {
  // Ten processes bounced around 5 machines in overlapping waves; every
  // process ends up live in exactly one place and still responsive.
  Cluster cluster(ClusterConfig{.machines = 5});
  std::vector<ProcessId> pids;
  for (int i = 0; i < 10; ++i) {
    auto p = cluster.kernel(static_cast<MachineId>(i % 5)).SpawnProcess("counter");
    ASSERT_TRUE(p.ok());
    pids.push_back(p->pid);
  }
  cluster.RunUntilIdle();

  Rng rng(0x5708);
  for (int wave = 0; wave < 6; ++wave) {
    for (const ProcessId& pid : pids) {
      const SimTime at = cluster.queue().Now() + 50 + rng.Below(4000);
      const auto dest = static_cast<MachineId>(rng.Below(5));
      cluster.queue().At(at, [&cluster, pid, dest]() {
        const MachineId from = cluster.HostOf(pid);
        if (from != kNoMachine) {
          (void)cluster.kernel(from).StartMigration(pid, dest,
                                                    cluster.kernel(from).kernel_address());
        }
      });
    }
    cluster.RunFor(5'000);
  }
  cluster.RunUntilIdle();

  for (const ProcessId& pid : pids) {
    int live = 0;
    for (MachineId m = 0; m < 5; ++m) {
      live += cluster.kernel(m).FindProcess(pid) != nullptr ? 1 : 0;
    }
    ASSERT_EQ(live, 1) << pid.ToString();
    const MachineId at = cluster.HostOf(pid);
    cluster.kernel(at).SendFromKernel(ProcessAddress{at, pid}, kIncrement, {});
  }
  cluster.RunUntilIdle();
  for (const ProcessId& pid : pids) {
    EXPECT_EQ(CountOf(cluster, pid), 1u) << pid.ToString();
  }
}

// ---------------------------------------------------------------------------
// Interdomain migration (Sec. 3.2): suspicious destinations refuse; the
// source "once rebuffed, has the option of looking elsewhere."
// ---------------------------------------------------------------------------

TEST_F(ConcurrentMigrationTest, RebuffedSourceLooksElsewhere) {
  ClusterConfig config;
  config.machines = 3;
  // Machine 1 is a different administrative domain: it refuses foreigners.
  config.kernel.accept_migration = [](const MigrateOffer& offer) {
    return offer.source != 0;  // rejects anything from machine 0
  };
  Cluster cluster(config);
  auto victim = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(victim.ok());
  cluster.RunUntilIdle();

  // First attempt: m1 refuses.
  testutil::MigrateAndSettle(cluster, victim->pid, 0, 1);
  EXPECT_NE(cluster.kernel(0).FindProcess(victim->pid), nullptr);
  ASSERT_FALSE(cluster.kernel(0).migrate_done_log().empty());
  EXPECT_EQ(cluster.kernel(0).migrate_done_log().back().status, StatusCode::kRefused);

  // Look elsewhere: m2 accepts (the predicate applies cluster-wide here, but
  // m2 sees source 0 too -- so flip roles: move to m2 via an accepted path).
  // Note the predicate above rejects source==0 everywhere; migrate 0 -> 2
  // would also be refused, demonstrating policy-wide autonomy:
  testutil::MigrateAndSettle(cluster, victim->pid, 0, 2);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log().back().status, StatusCode::kRefused);

  // The process is unharmed by both refusals.
  cluster.kernel(1).SendFromKernel(*victim, kIncrement, {});
  cluster.RunUntilIdle();
  EXPECT_EQ(CountOf(cluster, victim->pid), 1u);
}

TEST_F(ConcurrentMigrationTest, SelectiveDomainAcceptsOnlyItsOwn) {
  Cluster cluster(ClusterConfig{.machines = 4});
  // Domain A = {0, 1}, domain B = {2, 3}: each destination only accepts
  // offers whose source is in its own domain.
  for (MachineId m = 0; m < 4; ++m) {
    const MachineId domain = m / 2;
    cluster.kernel(m).SetAcceptMigration(
        [domain](const MigrateOffer& offer) { return offer.source / 2 == domain; });
  }
  auto native = cluster.kernel(0).SpawnProcess("counter");  // created in domain A
  ASSERT_TRUE(native.ok());
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, native->pid, 0, 1);  // intra-domain: ok
  EXPECT_EQ(cluster.HostOf(native->pid), 1);
  testutil::MigrateAndSettle(cluster, native->pid, 1, 2);  // cross-domain: refused
  EXPECT_EQ(cluster.HostOf(native->pid), 1);
  EXPECT_EQ(cluster.TotalStat(stat::kMigrationsRefused), 1);
}

}  // namespace
}  // namespace demos
