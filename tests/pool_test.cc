// Tests for the shard-local free-list pools (src/base/pool.h) and their
// integration with PayloadRef / ByteWriter (src/base/bytes.h).
//
// The pool is process-global, thread-local state; every test starts from
// PayloadBufferPool::DrainForTest() so hit/miss deltas are deterministic, and
// tests that shrink PayloadBufferPool::limits() restore the defaults before
// returning (the caps are plain members shared by the whole process).

#include "src/base/pool.h"

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/bytes.h"

namespace demos {
namespace {

// RAII: shrink the pool caps for one test, restore defaults on exit.
class ScopedPoolLimits {
 public:
  explicit ScopedPoolLimits(PayloadBufferPool::Limits next)
      : saved_(PayloadBufferPool::limits()) {
    PayloadBufferPool::limits() = next;
  }
  ~ScopedPoolLimits() { PayloadBufferPool::limits() = saved_; }

 private:
  PayloadBufferPool::Limits saved_;
};

PoolThreadStats StatsDelta(const PoolThreadStats& before) {
  PoolThreadStats now = PayloadBufferPool::ThreadStats();
  return PoolThreadStats{now.hits - before.hits, now.misses - before.misses};
}

TEST(PayloadBufferPoolTest, FirstAcquireMissesThenRecycledNodeHits) {
  PayloadBufferPool::DrainForTest();
  PoolThreadStats base = PayloadBufferPool::ThreadStats();

  {
    PayloadRef first{Bytes{1, 2, 3}};
    EXPECT_EQ(first.size(), 3u);
  }  // releases: node + capacity land in this thread's free-lists

  PoolThreadStats after_first = StatsDelta(base);
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, 1u) << "cold pool must fall back to the heap";

  {
    PayloadRef second{Bytes{4, 5}};
    EXPECT_EQ(second.size(), 2u);
    EXPECT_EQ(second[0], 4u);
  }

  PoolThreadStats after_second = StatsDelta(base);
  EXPECT_EQ(after_second.hits, 1u) << "recycled node object must be reused";
  EXPECT_EQ(after_second.misses, 1u);

  PayloadBufferPool::DrainForTest();
}

TEST(PayloadBufferPoolTest, ReleasedCapacityIsSalvagedForByteWriter) {
  PayloadBufferPool::DrainForTest();

  {
    ByteWriter w;  // cold: AcquireBytes misses
    for (int i = 0; i < 100; ++i) {
      w.U64(static_cast<std::uint64_t>(i));
    }
    PayloadRef ref{w.Take()};
    EXPECT_EQ(ref.size(), 800u);
  }  // node released; its 800-byte capacity goes to the buffer free-list

  PoolThreadStats base = PayloadBufferPool::ThreadStats();
  Bytes recycled = PayloadBufferPool::AcquireBytes();
  PoolThreadStats delta = StatsDelta(base);
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.misses, 0u);
  EXPECT_TRUE(recycled.empty()) << "salvaged buffers come back cleared";
  EXPECT_GE(recycled.capacity(), 800u) << "…but keep their heap capacity";

  PayloadBufferPool::DrainForTest();
}

TEST(PayloadBufferPoolTest, OversizedCapacityIsNotCached) {
  PayloadBufferPool::DrainForTest();
  ScopedPoolLimits limits([] {
    PayloadBufferPool::Limits lim;
    lim.max_buffer_bytes = 64;  // anything bigger dies instead of being cached
    return lim;
  }());

  { PayloadRef big{Bytes(1024, 0xAB)}; }

  PoolThreadStats base = PayloadBufferPool::ThreadStats();
  Bytes out = PayloadBufferPool::AcquireBytes();
  PoolThreadStats delta = StatsDelta(base);
  EXPECT_EQ(delta.hits, 0u) << "1 KiB capacity must not be salvaged past a 64 B cap";
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(out.capacity(), 0u);

  PayloadBufferPool::DrainForTest();
}

TEST(PayloadBufferPoolTest, ExhaustedPoolFallsBackToHeapWithoutLeaking) {
  PayloadBufferPool::DrainForTest();
  ScopedPoolLimits limits([] {
    PayloadBufferPool::Limits lim;
    lim.local_nodes = 0;    // nothing may be cached locally…
    lim.local_buffers = 0;
    lim.global_entries = 0;  // …or globally: every release must free
    return lim;
  }());

  PoolThreadStats base = PayloadBufferPool::ThreadStats();
  // Churn refs with the pool fully disabled.  Every acquire is a heap miss
  // and every release a plain delete; ASan/LSan (when enabled) verifies the
  // fallback path frees what it allocates.
  for (int i = 0; i < 64; ++i) {
    PayloadRef ref{Bytes{static_cast<std::uint8_t>(i)}};
    PayloadRef copy = ref;
    EXPECT_TRUE(copy.SharesBufferWith(ref));
  }
  PoolThreadStats delta = StatsDelta(base);
  EXPECT_EQ(delta.hits, 0u);
  EXPECT_EQ(delta.misses, 64u);

  PayloadBufferPool::DrainForTest();
}

TEST(PayloadBufferPoolTest, LocalOverflowSpillsToGlobalFallback) {
  PayloadBufferPool::DrainForTest();
  ScopedPoolLimits limits([] {
    PayloadBufferPool::Limits lim;
    lim.local_nodes = 1;  // second released node must go to the global list
    lim.local_buffers = 1;
    return lim;
  }());

  std::vector<PayloadRef> refs;
  for (int i = 0; i < 3; ++i) {
    refs.emplace_back(Bytes{static_cast<std::uint8_t>(i)});
  }
  refs.clear();  // releases 3 nodes: 1 local, 2 global

  PoolThreadStats base = PayloadBufferPool::ThreadStats();
  std::vector<PayloadRef> again;
  for (int i = 0; i < 3; ++i) {
    again.emplace_back(Bytes{static_cast<std::uint8_t>(i)});
  }
  PoolThreadStats delta = StatsDelta(base);
  EXPECT_EQ(delta.hits, 3u) << "local pop + two global refills must all hit";
  EXPECT_EQ(delta.misses, 0u);

  again.clear();
  PayloadBufferPool::DrainForTest();
}

TEST(PayloadBufferPoolTest, CrossThreadReleaseDonatesNodesAtThreadExit) {
  PayloadBufferPool::DrainForTest();

  // Migration-handoff shape: payloads built on this thread, released on
  // another (the destination shard), whose cache donates to the global
  // fallback when the thread exits.
  std::vector<PayloadRef> outbound;
  for (int i = 0; i < 4; ++i) {
    outbound.emplace_back(Bytes{static_cast<std::uint8_t>(i), 0xFF});
  }
  std::thread consumer([moved = std::move(outbound)]() mutable {
    for (PayloadRef& ref : moved) {
      EXPECT_EQ(ref.size(), 2u);
    }
    moved.clear();  // releases land in the consumer thread's local cache
  });
  consumer.join();  // cache destructor donates the nodes to the global list

  PoolThreadStats base = PayloadBufferPool::ThreadStats();
  std::vector<PayloadRef> reused;
  for (int i = 0; i < 4; ++i) {
    reused.emplace_back(Bytes{static_cast<std::uint8_t>(i)});
  }
  PoolThreadStats delta = StatsDelta(base);
  EXPECT_EQ(delta.hits, 4u)
      << "nodes freed on a dead thread must refill via the global fallback";
  EXPECT_EQ(delta.misses, 0u);

  reused.clear();
  PayloadBufferPool::DrainForTest();
}

TEST(PayloadBufferPoolTest, CopyOnWriteClonesThroughThePool) {
  PayloadBufferPool::DrainForTest();

  PayloadRef original{Bytes{10, 20, 30}};
  PayloadRef alias = original;
  ASSERT_TRUE(alias.SharesBufferWith(original));

  PoolThreadStats base = PayloadBufferPool::ThreadStats();
  std::uint8_t* p = alias.MutableData();  // refs > 1: must clone
  ASSERT_NE(p, nullptr);
  p[0] = 99;

  EXPECT_FALSE(alias.SharesBufferWith(original));
  EXPECT_EQ(alias[0], 99u);
  EXPECT_EQ(original[0], 10u) << "other refs keep seeing the old bytes";
  // The clone went through AcquireNode (pool-accounted), not bare new.
  PoolThreadStats delta = StatsDelta(base);
  EXPECT_EQ(delta.hits + delta.misses, 1u);

  PayloadBufferPool::DrainForTest();
}

TEST(OwnedFreeListTest, RecyclesUpToCapAndReportsHits) {
  OwnedFreeList<std::vector<int>> list(/*cap=*/2);

  bool hit = true;
  std::unique_ptr<std::vector<int>> a = list.Acquire(&hit);
  EXPECT_FALSE(hit) << "empty list must allocate";
  a->assign({1, 2, 3});

  std::vector<int>* raw = a.get();
  list.Release(std::move(a));
  EXPECT_EQ(list.size(), 1u);

  std::unique_ptr<std::vector<int>> b = list.Acquire(&hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(b.get(), raw) << "recycled object comes back as-is";
  EXPECT_EQ(b->size(), 3u) << "caller owns re-initialization, not the pool";

  // Cap enforcement: the third release is dropped (freed), not cached.
  list.Release(std::make_unique<std::vector<int>>());
  list.Release(std::make_unique<std::vector<int>>());
  list.Release(std::move(b));
  EXPECT_EQ(list.size(), 2u);
}

}  // namespace
}  // namespace demos
