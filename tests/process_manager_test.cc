// Process manager and memory scheduler tests (Sec. 2.3, 3.1).

#include <gtest/gtest.h>

#include "src/sys/memory_scheduler.h"
#include "src/sys/process_manager.h"
#include "tests/sys_test_util.h"

namespace demos {
namespace {

class ProcessManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterSystemPrograms();
    RegisterWorkloadPrograms();
    GlobalCapture().clear();
    DefaultProcessManagerConfig() = {};
  }

  Link ReplyLink(const ProcessAddress& to) {
    Link l;
    l.address = to;
    l.flags = kLinkReply;
    return l;
  }
};

TEST_F(ProcessManagerTest, BootBringsUpSystemProcesses) {
  Cluster cluster(ClusterConfig{.machines = 3});
  SystemLayout layout = BootSystem(cluster);
  EXPECT_NE(cluster.FindProcessAnywhere(layout.switchboard.pid), nullptr);
  EXPECT_NE(cluster.FindProcessAnywhere(layout.process_manager.pid), nullptr);
  EXPECT_NE(cluster.FindProcessAnywhere(layout.memory_scheduler.pid), nullptr);
  EXPECT_NE(cluster.FindProcessAnywhere(layout.fs_request.pid), nullptr);
  EXPECT_NE(cluster.FindProcessAnywhere(layout.fs_disk.pid), nullptr);
}

TEST_F(ProcessManagerTest, CreatesProcessOnRequestedMachine) {
  Cluster cluster(ClusterConfig{.machines = 3});
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 1);

  ByteWriter w;
  w.U64(42);  // requester cookie
  w.Str("idle");
  w.U16(2);  // explicit machine
  w.U32(2048);
  w.U32(1024);
  w.U32(512);
  cluster.kernel(0).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                   {ReplyLink(*sink)});

  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(1).empty(); }));
  auto captured = testutil::CapturedFor(1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].type, kPmCreateReply);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(r.U64(), 42u);
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  ProcessAddress created = r.Address();
  EXPECT_EQ(created.last_known_machine, 2);
  EXPECT_NE(cluster.kernel(2).FindProcess(created.pid), nullptr);
}

TEST_F(ProcessManagerTest, AnyMachinePlacementPrefersIdleMachine) {
  Cluster cluster(ClusterConfig{.machines = 3});
  BootOptions options;
  options.load_report_interval_us = 10'000;
  SystemLayout layout = BootSystem(cluster, options);

  // Load machine 0 (where the system processes live) with CPU-bound work.
  auto hog = cluster.kernel(0).SpawnProcess("cpu_bound");
  ASSERT_TRUE(hog.ok());
  CpuBoundConfig hog_config;
  hog_config.quantum_us = 9000;
  hog_config.period_us = 10'000;
  hog_config.total_us = 10'000'000;
  (void)cluster.kernel(0).FindProcess(hog->pid)->memory.WriteData(0, hog_config.Encode());
  cluster.RunFor(200'000);  // accumulate load reports

  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 2);

  ByteWriter w;
  w.U64(7);
  w.Str("idle");
  w.U16(kNoMachine);  // "any"
  w.U32(1024);
  w.U32(512);
  w.U32(256);
  cluster.kernel(1).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                   {ReplyLink(*sink)});
  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(2).empty(); }));

  ByteReader r(Bytes(testutil::CapturedFor(2)[0].payload));
  (void)r.U64();
  ASSERT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  ProcessAddress created = r.Address();
  EXPECT_NE(created.last_known_machine, 0) << "should avoid the loaded machine";
}

TEST_F(ProcessManagerTest, MigratesOnRequestAndReplies) {
  Cluster cluster(ClusterConfig{.machines = 3});
  SystemLayout layout = BootSystem(cluster);
  auto victim = cluster.kernel(0).SpawnProcess("counter");
  auto sink = cluster.kernel(2).SpawnProcess("sink");
  ASSERT_TRUE(victim.ok() && sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 3);

  ByteWriter w;
  w.Pid(victim->pid);
  w.U16(0);  // current machine hint
  w.U16(1);  // destination
  cluster.kernel(2).SendFromKernel(layout.process_manager, kPmMigrate, w.Take(),
                                   {ReplyLink(*sink)});
  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(3).empty(); }));

  auto captured = testutil::CapturedFor(3);
  EXPECT_EQ(captured[0].type, kPmMigrateReply);
  ByteReader r(captured[0].payload);
  EXPECT_EQ(r.Pid(), victim->pid);
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  EXPECT_EQ(r.U16(), 1);
  EXPECT_NE(cluster.kernel(1).FindProcess(victim->pid), nullptr);
}

TEST_F(ProcessManagerTest, ThresholdPolicyBalancesLoad) {
  Cluster cluster(ClusterConfig{.machines = 2});
  BootOptions options;
  options.policy = "threshold";
  options.policy_interval_us = 50'000;
  options.load_report_interval_us = 20'000;
  SystemLayout layout = BootSystem(cluster, options);
  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 4);

  // Create two CPU hogs via the PM, both pinned-free, both on machine 0.
  std::vector<ProcessId> hogs;
  for (int i = 0; i < 2; ++i) {
    ByteWriter w;
    w.U64(100 + static_cast<std::uint64_t>(i));
    w.Str("cpu_bound");
    w.U16(0);
    w.U32(2048);
    w.U32(1024);
    w.U32(512);
    cluster.kernel(1).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                     {ReplyLink(*sink)});
  }
  ASSERT_TRUE(
      testutil::RunUntil(cluster, [&] { return testutil::CapturedFor(4).size() >= 2; }));
  for (const auto& captured : testutil::CapturedFor(4)) {
    ByteReader r(captured.payload);
    (void)r.U64();
    ASSERT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
    ProcessAddress addr = r.Address();
    hogs.push_back(addr.pid);
    CpuBoundConfig config;
    config.quantum_us = 8000;
    config.period_us = 10'000;
    config.total_us = 60'000'000;
    ProcessRecord* record = cluster.FindProcessAnywhere(addr.pid);
    ASSERT_NE(record, nullptr);
    (void)record->memory.WriteData(0, config.Encode());
    // Kick the program (it read config at OnStart; restart its timer loop).
    cluster.kernel(addr.last_known_machine)
        .SendFromKernel(addr, MsgType::kResumeProcess, {}, {}, kLinkDeliverToKernel);
  }
  // Nudge: configs were written after OnStart, so re-trigger their tick.
  for (const ProcessId& pid : hogs) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    KernelContext ctx(&cluster.kernel(cluster.HostOf(pid)), record);
    ctx.SetTimer(1, 0x71CC);
  }

  // With both hogs on machine 0, the threshold policy should move one away.
  const bool balanced = testutil::RunUntil(
      cluster,
      [&] {
        return cluster.HostOf(hogs[0]) != cluster.HostOf(hogs[1]);
      },
      3'000'000, 20'000);
  EXPECT_TRUE(balanced);
  ProcessManagerProgram* pm =
      testutil::ProgramOf<ProcessManagerProgram>(cluster, layout.process_manager.pid);
  ASSERT_NE(pm, nullptr);
  EXPECT_GE(pm->migrations_started(), 1);
}

TEST_F(ProcessManagerTest, EvacuateMovesEverythingOffMachine) {
  Cluster cluster(ClusterConfig{.machines = 3});
  SystemLayout layout = BootSystem(cluster);
  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 5);

  // Create three processes on machine 2 via the PM.
  std::vector<ProcessId> pids;
  for (int i = 0; i < 3; ++i) {
    ByteWriter w;
    w.U64(static_cast<std::uint64_t>(i));
    w.Str("counter");
    w.U16(2);
    w.U32(1024);
    w.U32(512);
    w.U32(256);
    cluster.kernel(1).SendFromKernel(layout.process_manager, kPmCreate, w.Take(),
                                     {ReplyLink(*sink)});
  }
  ASSERT_TRUE(
      testutil::RunUntil(cluster, [&] { return testutil::CapturedFor(5).size() >= 3; }));
  for (const auto& captured : testutil::CapturedFor(5)) {
    ByteReader r(captured.payload);
    (void)r.U64();
    (void)r.U8();
    pids.push_back(r.Address().pid);
  }

  ByteWriter w;
  w.U16(2);
  cluster.kernel(1).SendFromKernel(layout.process_manager, kPmEvacuate, w.Take());
  const bool evacuated = testutil::RunUntil(
      cluster,
      [&] {
        for (const ProcessId& pid : pids) {
          if (cluster.HostOf(pid) == 2 || cluster.HostOf(pid) == kNoMachine) {
            return false;
          }
        }
        return true;
      },
      3'000'000);
  EXPECT_TRUE(evacuated);
}

TEST_F(ProcessManagerTest, ManagerItselfCanMigrate) {
  // The PM's inventory, pins, and policy travel in its program state.
  Cluster cluster(ClusterConfig{.machines = 3});
  SystemLayout layout = BootSystem(cluster);
  testutil::MigrateAndSettle(cluster, layout.process_manager.pid, 0, 2);
  // MigrateAndSettle uses RunUntilIdle; bounded because load reports target
  // the PM's address and keep working (they are forwarded).  Give it a kick:
  cluster.RunFor(100'000);

  ASSERT_NE(cluster.kernel(2).FindProcess(layout.process_manager.pid), nullptr);
  ProcessManagerProgram* pm =
      testutil::ProgramOf<ProcessManagerProgram>(cluster, layout.process_manager.pid);
  ASSERT_NE(pm, nullptr);

  // It still creates processes after moving.
  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 6);
  ByteWriter w;
  w.U64(1);
  w.Str("idle");
  w.U16(1);
  w.U32(1024);
  w.U32(512);
  w.U32(256);
  // Old address: the request is forwarded to the PM's new home.
  cluster.kernel(1).SendFromKernel(ProcessAddress{0, layout.process_manager.pid}, kPmCreate,
                                   w.Take(), {ReplyLink(*sink)});
  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(6).empty(); }));
  ByteReader r(Bytes(testutil::CapturedFor(6)[0].payload));
  (void)r.U64();
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
}

TEST_F(ProcessManagerTest, MemorySchedulerAnswersQueries) {
  Cluster cluster(ClusterConfig{.machines = 2});
  BootOptions options;
  options.load_report_interval_us = 10'000;
  SystemLayout layout = BootSystem(cluster, options);
  cluster.RunFor(100'000);  // several reports forwarded PM -> MS

  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 7);

  ByteWriter w;
  w.U16(0);
  cluster.kernel(1).SendFromKernel(layout.memory_scheduler, kMsQuery, w.Take(),
                                   {ReplyLink(*sink)});
  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(7).empty(); }));
  ByteReader r(Bytes(testutil::CapturedFor(7)[0].payload));
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  EXPECT_GT(r.U64(), 0u);  // machine 0 hosts system processes => memory in use
}

TEST_F(ProcessManagerTest, MemorySchedulerFindsSpace) {
  Cluster cluster(ClusterConfig{.machines = 2});
  BootOptions options;
  options.load_report_interval_us = 10'000;
  SystemLayout layout = BootSystem(cluster, options);
  cluster.RunFor(60'000);

  auto sink = cluster.kernel(1).SpawnProcess("sink");
  ASSERT_TRUE(sink.ok());
  cluster.RunFor(1000);
  testutil::TagProcess(cluster, *sink, 8);

  ByteWriter w;
  w.U64(1024);
  cluster.kernel(1).SendFromKernel(layout.memory_scheduler, kMsFindSpace, w.Take(),
                                   {Link{*sink, kLinkReply, 0, 0}});
  ASSERT_TRUE(testutil::RunUntil(cluster, [&] { return !testutil::CapturedFor(8).empty(); }));
  ByteReader r(Bytes(testutil::CapturedFor(8)[0].payload));
  EXPECT_EQ(static_cast<StatusCode>(r.U8()), StatusCode::kOk);
  EXPECT_NE(r.U16(), kNoMachine);
}

}  // namespace
}  // namespace demos
