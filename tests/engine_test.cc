// Tests for the unified Engine interface (src/kernel/engine.h): the shared
// EngineConfig core and construction helpers, the engine-generic harness
// surface on both Cluster and ParallelCluster, conservative-sync integration
// (deadlines fire only for real stalls; the LBTS bound never lets a frame
// into a shard's past), and the chaos harness running on the parallel engine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "src/base/stats.h"
#include "src/check/chaos.h"
#include "src/kernel/cluster.h"
#include "src/kernel/engine.h"
#include "src/obs/metrics.h"
#include "src/run/parallel_cluster.h"
#include "src/workload/programs.h"
#include "src/workload/token_ring_harness.h"

namespace demos {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterWorkloadPrograms(); }
};

std::unique_ptr<Engine> MakeEngine(bool parallel, int machines) {
  if (!parallel) {
    return std::make_unique<Cluster>(ClusterConfig{.machines = machines});
  }
  ParallelClusterConfig config;
  config.machines = machines;
  return std::make_unique<ParallelCluster>(config);
}

// ---------------------------------------------------------------------------
// The shared config core and construction helpers.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, EngineCoreCarriesSharedConfigFromBothConfigs) {
  ClusterConfig cc{.machines = 5};
  cc.trace_enabled = true;
  cc.metrics_enabled = true;
  cc.flight_recorder_enabled = true;
  cc.flight_capacity = 128;
  cc.kernel.seed = 42;
  const EngineConfig seq = cc.EngineCore();
  EXPECT_EQ(seq.machines, 5);
  EXPECT_TRUE(seq.trace_enabled);
  EXPECT_TRUE(seq.metrics_enabled);
  EXPECT_TRUE(seq.flight_recorder_enabled);
  EXPECT_EQ(seq.flight_capacity, 128u);
  EXPECT_EQ(seq.kernel.seed, 42u);

  ParallelClusterConfig pc;
  pc.machines = 3;
  pc.flight_capacity = 64;
  const EngineConfig par = pc.EngineCore();
  EXPECT_EQ(par.machines, 3);
  EXPECT_TRUE(par.metrics_enabled) << "parallel defaults metrics on";
  EXPECT_TRUE(par.flight_recorder_enabled);
  EXPECT_EQ(par.flight_capacity, 64u);
}

TEST_F(EngineTest, MakeObservabilityFollowsSlotConvention) {
  EngineConfig core;
  core.machines = 4;
  EngineObservability off = MakeObservability(core);
  EXPECT_EQ(off.metrics, nullptr);
  EXPECT_EQ(off.flight, nullptr);

  core.metrics_enabled = true;
  core.flight_recorder_enabled = true;
  EngineObservability on = MakeObservability(core);
  ASSERT_NE(on.metrics, nullptr);
  ASSERT_NE(on.flight, nullptr);
  // machines+1 slots: one per machine plus the harness/coordinator slot.
  EXPECT_EQ(on.metrics->shards(), 5);
  EXPECT_EQ(on.flight->shards(), 5);
}

TEST_F(EngineTest, DeriveKernelConfigSkewsSeedPerMachine) {
  EngineConfig core;
  core.kernel.seed = 100;
  core.kernel.data_packet_bytes = 512;
  const KernelConfig k0 = DeriveKernelConfig(core, 0);
  const KernelConfig k3 = DeriveKernelConfig(core, 3);
  EXPECT_EQ(k0.seed, 100u);
  EXPECT_EQ(k3.seed, 103u);
  EXPECT_EQ(k3.data_packet_bytes, 512u) << "everything but the seed is shared";
}

// ---------------------------------------------------------------------------
// The engine-generic harness surface: one loop body, two engines.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, HarnessSurfaceRunsUnchangedOnBothEngines) {
  for (const bool parallel : {false, true}) {
    SCOPED_TRACE(parallel ? "parallel" : "sequential");
    std::unique_ptr<Engine> engine = MakeEngine(parallel, 3);
    TokenRingSpec spec;
    spec.rings = 2;
    spec.nodes_per_ring = 3;
    spec.tokens_per_node = 1;
    spec.hops_per_token = 12;
    const std::vector<TokenRing> rings = BuildTokenRings(*engine, spec);
    ASSERT_FALSE(rings.empty());
    KickTokenRings(*engine, rings, spec.tokens_per_node, spec.hops_per_token);
    ASSERT_TRUE(engine->RunUntilSettled().settled);

    EXPECT_EQ(engine->size(), 3);
    EXPECT_EQ(engine->TotalStat(stat::kMsgsDelivered), ExpectedRingDeliveries(spec));
    EXPECT_EQ(engine->KernelStats().size(), 3u);
    for (const TokenRing& ring : rings) {
      for (const ProcessAddress& node : ring) {
        EXPECT_EQ(engine->HostOf(node.pid), node.last_known_machine);
        EXPECT_NE(engine->FindProcessAnywhere(node.pid), nullptr);
      }
    }
    const MetricsSnapshot snap = engine->BuildSnapshot();
    EXPECT_EQ(snap.kernel_total.at("kernel.msgs_delivered"),
              engine->TotalStat(stat::kMsgsDelivered));
  }
}

TEST_F(EngineTest, ScheduleOnUsesTheTargetMachineClock) {
  for (const bool parallel : {false, true}) {
    SCOPED_TRACE(parallel ? "parallel" : "sequential");
    std::unique_ptr<Engine> engine = MakeEngine(parallel, 2);
    std::atomic<SimTime> observed{0};
    Engine* e = engine.get();
    engine->ScheduleOn(1, 777, [e, &observed] { observed = e->kernel(1).queue().Now(); });
    ASSERT_TRUE(engine->RunUntilSettled().settled);
    EXPECT_EQ(observed.load(), 777u);
  }
}

TEST_F(EngineTest, ExecuteRunsInTheMachineContext) {
  // Sequential: inline, visible immediately.
  std::unique_ptr<Engine> seq = MakeEngine(false, 2);
  std::atomic<int> ran{0};
  seq->Execute(1, [&ran] { ++ran; });
  EXPECT_EQ(ran.load(), 1);

  // Parallel: posted to the shard thread, visible after the next settle.
  std::unique_ptr<Engine> par = MakeEngine(true, 2);
  ASSERT_TRUE(par->RunUntilSettled().settled);  // start the shards
  par->Execute(1, [&ran] { ++ran; });
  ASSERT_TRUE(par->RunUntilSettled().settled);
  EXPECT_EQ(ran.load(), 2);
}

// ---------------------------------------------------------------------------
// Conservative sync x migration deadlines.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, ArmingDeadlinesAutoEnablesSyncOnParallel) {
  ParallelClusterConfig off;
  off.machines = 2;
  EXPECT_FALSE(ParallelCluster(off).sync_enabled());

  ParallelClusterConfig armed;
  armed.machines = 2;
  armed.kernel.migration_deadlines.offer_accept_us = 5000;
  EXPECT_TRUE(ParallelCluster(armed).sync_enabled());

  ParallelClusterConfig explicit_sync;
  explicit_sync.machines = 2;
  explicit_sync.sync.enabled = true;
  EXPECT_TRUE(ParallelCluster(explicit_sync).sync_enabled());
}

TEST_F(EngineTest, MigrationDeadlineFiresForRealStallUnderParallelSync) {
  ParallelClusterConfig config;
  config.machines = 2;
  config.kernel.migration_deadlines.offer_accept_us = 5000;
  ParallelCluster cluster(config);
  ASSERT_TRUE(cluster.sync_enabled());

  auto victim = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(victim.ok());
  // The destination is dead before the run starts: the offer is dropped and
  // only the source watchdog can unwedge the migration.
  cluster.kernel(1).SetHalted(true);
  ParallelCluster* c = &cluster;
  const ProcessId pid = victim->pid;
  cluster.ScheduleOn(0, 1000, [c, pid] {
    (void)c->kernel(0).StartMigration(pid, 1, c->kernel(0).kernel_address());
  });

  ASSERT_TRUE(cluster.RunUntilSettled().settled);
  EXPECT_EQ(cluster.TotalStat(stat::kMigrationsTimedOut), 1);
  EXPECT_GE(cluster.TotalStat(stat::kPeersSuspected), 1);
  EXPECT_EQ(cluster.HostOf(pid), 0) << "source must roll the victim back";
  ASSERT_NE(cluster.FindProcessAnywhere(pid), nullptr);
  cluster.Stop();
}

TEST_F(EngineTest, MigrationDeadlineStaysQuietForHealthyMigration) {
  ParallelClusterConfig config;
  config.machines = 2;
  config.kernel.migration_deadlines.offer_accept_us = 5000;
  config.kernel.migration_deadlines.transfer_progress_us = 5000;
  config.kernel.migration_deadlines.handoff_us = 5000;
  ParallelCluster cluster(config);

  auto victim = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(victim.ok());
  ParallelCluster* c = &cluster;
  const ProcessId pid = victim->pid;
  cluster.ScheduleOn(0, 1000, [c, pid] {
    (void)c->kernel(0).StartMigration(pid, 1, c->kernel(0).kernel_address());
  });

  ASSERT_TRUE(cluster.RunUntilSettled().settled);
  EXPECT_EQ(cluster.TotalStat(stat::kMigrations), 1);
  EXPECT_EQ(cluster.TotalStat(stat::kMigrationsTimedOut), 0)
      << "armed deadlines must not fire when every phase makes progress";
  EXPECT_EQ(cluster.HostOf(pid), 1);
  cluster.Stop();
}

// Every event and frame of this run is either staged before Start or produced
// inside sync windows, so the conservative bound must be airtight: zero
// cross-shard frames clamped into a receiver's past, and the coordinator must
// actually have run LBTS rounds to get there.  (Harness injections at
// quiescence barriers are the one legitimate clamp source; this test has
// none.)
TEST_F(EngineTest, LbtsBoundNeverAdmitsAFrameIntoThePast) {
  ParallelClusterConfig config;
  config.machines = 4;
  config.sync.enabled = true;
  // Pin strictly conservative windows: this test is the zero-clamp proof for
  // the static bound, and widening would reroute clamps to wide_frames_clamped.
  config.sync.wide_window_spans = 0;
  config.settle_timeout = std::chrono::milliseconds(60000);
  ParallelCluster cluster(config);

  TokenRingSpec spec;
  spec.rings = 4;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 1;
  spec.hops_per_token = 30;
  const std::vector<TokenRing> rings = BuildTokenRings(cluster, spec);
  ASSERT_FALSE(rings.empty());
  KickTokenRings(cluster, rings, spec.tokens_per_node, spec.hops_per_token);
  ASSERT_TRUE(cluster.RunUntilSettled().settled);

  EXPECT_EQ(cluster.TotalStat(stat::kMsgsDelivered), ExpectedRingDeliveries(spec));
  ASSERT_NE(cluster.metrics(), nullptr);
  const MetricsSnapshot snap = cluster.metrics()->Snapshot();
  EXPECT_EQ(snap.total.counters[static_cast<std::size_t>(CounterId::kSyncFramesClamped)], 0u);
  EXPECT_GT(snap.total.counters[static_cast<std::size_t>(CounterId::kLbtsWindows)], 0u);
  // Windows are a coordinator-only activity, per the slot convention.
  const ShardSnapshot& coord =
      snap.shards[static_cast<std::size_t>(cluster.coordinator_slot())];
  EXPECT_EQ(coord.counters[static_cast<std::size_t>(CounterId::kLbtsWindows)],
            snap.total.counters[static_cast<std::size_t>(CounterId::kLbtsWindows)]);
  cluster.Stop();
}

TEST_F(EngineTest, AdaptiveLbtsOpensWideWindowsAndKeepsDeliveryExact) {
  // Default sync config: adaptive lookahead and wide windows are ON.  With no
  // migration in flight no shard is ever tight, so the coordinator should be
  // opening wide windows -- and every delivery must still be exactly-once,
  // with clamped arrivals (if any) accounted as wide-era residue, never as a
  // conservative-sync violation.
  ParallelClusterConfig config;
  config.machines = 4;
  config.sync.enabled = true;
  config.settle_timeout = std::chrono::milliseconds(60000);
  ParallelCluster cluster(config);

  TokenRingSpec spec;
  spec.rings = 4;
  spec.nodes_per_ring = 4;
  spec.tokens_per_node = 1;
  spec.hops_per_token = 30;
  const std::vector<TokenRing> rings = BuildTokenRings(cluster, spec);
  ASSERT_FALSE(rings.empty());
  KickTokenRings(cluster, rings, spec.tokens_per_node, spec.hops_per_token);
  ASSERT_TRUE(cluster.RunUntilSettled().settled);

  EXPECT_EQ(cluster.TotalStat(stat::kMsgsDelivered), ExpectedRingDeliveries(spec));
  ASSERT_NE(cluster.metrics(), nullptr);
  const MetricsSnapshot snap = cluster.metrics()->Snapshot();
  EXPECT_GT(snap.total.counters[static_cast<std::size_t>(CounterId::kWideWindowsOpened)], 0u)
      << "a run with no tight consumers should widen its windows";
  EXPECT_EQ(snap.total.counters[static_cast<std::size_t>(CounterId::kSyncFramesClamped)], 0u)
      << "clamps in an ever-wide run belong to wide_frames_clamped";
  cluster.Stop();
}

// ---------------------------------------------------------------------------
// The chaos harness through the Engine seam.
// ---------------------------------------------------------------------------

std::string ViolationSummary(const ChaosResult& result) {
  std::string out;
  for (const auto& v : result.violations) {
    out += v.ToString() + "\n";
  }
  return out;
}

TEST_F(EngineTest, ChaosScenariosPassOnParallelEngine) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ChaosScenario scenario = ScenarioFromSeed(seed);
    ChaosOptions options;
    options.engine = ChaosEngineKind::kParallel;
    options.collect_trace = false;
    options.collect_flight = false;
    const ChaosResult result = RunScenario(scenario, options);
    EXPECT_TRUE(result.ok()) << "seed " << seed << "\n" << ViolationSummary(result);
  }
}

TEST_F(EngineTest, ChaosPermanentDeathPassesOnParallelEngine) {
  ChaosScenario scenario = PermanentDeathScenarioFromSeed(1);
  ChaosOptions options;
  options.engine = ChaosEngineKind::kParallel;
  options.collect_trace = false;
  options.collect_flight = false;
  const ChaosResult result = RunScenario(scenario, options);
  EXPECT_TRUE(result.ok()) << ViolationSummary(result);
}

}  // namespace
}  // namespace demos
