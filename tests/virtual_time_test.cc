// Units for the conservative virtual-time sync layer (src/run/virtual_time.h)
// and the pieces of EventQueue / ShardRouter it builds on: bounded stepping,
// floors, link lookahead, the LBTS bound derivation, the busy/floor publish
// protocol, and timestamped frame draining.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/run/shard_router.h"
#include "src/run/virtual_time.h"
#include "src/sim/event_queue.h"

namespace demos {
namespace {

// ---------------------------------------------------------------------------
// EventQueue: bounded advance and floors.
// ---------------------------------------------------------------------------

TEST(VirtualTimeQueueTest, NextEventTimeIsFloorOrNever) {
  EventQueue queue;
  EXPECT_EQ(queue.NextEventTime(), kSimTimeNever);
  queue.At(500, [] {});
  queue.At(100, [] {});
  EXPECT_EQ(queue.NextEventTime(), 100u);
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(queue.NextEventTime(), 500u);
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(queue.NextEventTime(), kSimTimeNever);
}

TEST(VirtualTimeQueueTest, StepIfAtMostRespectsBoundWithoutAdvancingClock) {
  EventQueue queue;
  int ran = 0;
  queue.At(100, [&ran] { ++ran; });
  queue.At(200, [&ran] { ++ran; });
  queue.At(300, [&ran] { ++ran; });

  EXPECT_TRUE(queue.StepIfAtMost(250));
  EXPECT_TRUE(queue.StepIfAtMost(250));
  EXPECT_FALSE(queue.StepIfAtMost(250)) << "the 300us event is past the bound";
  EXPECT_EQ(ran, 2);
  // Unlike RunUntil, the clock stays at the last *executed* event, so a later
  // window can still schedule between 200 and the old bound.
  EXPECT_EQ(queue.Now(), 200u);
  queue.At(220, [&ran] { ++ran; });
  EXPECT_TRUE(queue.StepIfAtMost(250));
  EXPECT_EQ(ran, 3);
  EXPECT_FALSE(queue.StepIfAtMost(250));
  EXPECT_TRUE(queue.StepIfAtMost(300));
  EXPECT_EQ(ran, 4);
}

TEST(VirtualTimeQueueTest, PastSchedulesClampToNow) {
  EventQueue queue;
  queue.At(1000, [] {});
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(queue.Now(), 1000u);
  SimTime observed = 0;
  queue.At(50, [&] { observed = queue.Now(); });  // in the past: clamps
  EXPECT_EQ(queue.NextEventTime(), 1000u);
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(observed, 1000u);
}

// ---------------------------------------------------------------------------
// LinkLatencyTable: clamping, overrides, lookahead.
// ---------------------------------------------------------------------------

TEST(LinkLatencyTableTest, UniformLatencyAndZeroClamp) {
  LinkLatencyTable table(3, /*uniform_us=*/100);
  EXPECT_EQ(table.Latency(0, 1), 100u);
  EXPECT_EQ(table.Latency(2, 0), 100u);
  EXPECT_EQ(table.LookaheadFrom(1), 100u);

  LinkLatencyTable clamped(2, /*uniform_us=*/0);
  EXPECT_EQ(clamped.Latency(0, 1), 1u) << "zero lookahead would stall LBTS";
  EXPECT_EQ(clamped.LookaheadFrom(0), 1u);
}

TEST(LinkLatencyTableTest, OverridesAreDirectionalAndShrinkLookahead) {
  LinkLatencyTable table(3, /*uniform_us=*/100);
  table.SetLink(0, 1, 10);
  table.SetLink(1, 0, 0);  // clamps to 1
  EXPECT_EQ(table.Latency(0, 1), 10u);
  EXPECT_EQ(table.Latency(1, 0), 1u);
  EXPECT_EQ(table.Latency(1, 2), 100u) << "override is per-link, not per-shard";
  // Lookahead is the min over outgoing links.
  EXPECT_EQ(table.LookaheadFrom(0), 10u);
  EXPECT_EQ(table.LookaheadFrom(1), 1u);
  EXPECT_EQ(table.LookaheadFrom(2), 100u);
}

TEST(LinkLatencyTableTest, CachedLookaheadTracksRaisedAndLoweredLinks) {
  // LookaheadFrom is cached per source (NextBound used to rescan the full
  // latency row per shard per window); SetLink must keep the cache exact in
  // both directions, including raising the link that *was* the minimum.
  LinkLatencyTable table(3, /*uniform_us=*/100);
  table.SetLink(0, 1, 10);
  EXPECT_EQ(table.LookaheadFrom(0), 10u);
  table.SetLink(0, 2, 5);
  EXPECT_EQ(table.LookaheadFrom(0), 5u);
  table.SetLink(0, 2, 500);  // the old minimum goes away
  EXPECT_EQ(table.LookaheadFrom(0), 10u) << "raising a link must rescan, not keep the stale min";
  table.SetLink(0, 1, 700);
  EXPECT_EQ(table.LookaheadFrom(0), 100u) << "all overrides above uniform: uniform wins";
  EXPECT_EQ(table.MinLookahead(), 100u);
  table.SetLink(2, 0, 3);
  EXPECT_EQ(table.MinLookahead(), 3u);
}

// ---------------------------------------------------------------------------
// LbtsState: bound derivation and the publish protocol.
// ---------------------------------------------------------------------------

TEST(LbtsStateTest, NextBoundIsMinFloorPlusLookaheadMinusOne) {
  LbtsState lbts(3);
  LinkLatencyTable latency(3, /*uniform_us=*/100);
  // floors 1000/5000/2000 with uniform 100us lookahead: bound = 1099.
  const SimTime next = lbts.NextBound({1000, 5000, 2000}, latency);
  EXPECT_EQ(next, 1099u);
}

TEST(LbtsStateTest, NextBoundSkipsDrainedShardsAndDetectsQuiescence) {
  LbtsState lbts(3);
  LinkLatencyTable latency(3, /*uniform_us=*/50);
  EXPECT_EQ(lbts.NextBound({kSimTimeNever, 400, kSimTimeNever}, latency), 449u);
  EXPECT_EQ(lbts.NextBound({kSimTimeNever, kSimTimeNever, kSimTimeNever}, latency),
            kSimTimeNever)
      << "every queue drained = cluster quiescent";
}

TEST(LbtsStateTest, NextBoundAlwaysAdvancesPastCurrentBound) {
  LbtsState lbts(2);
  LinkLatencyTable latency(2, /*uniform_us=*/1);
  lbts.OpenWindow(500);
  // Degenerate floors at/below the bound still yield strict progress.
  EXPECT_GT(lbts.NextBound({400, 300}, latency), 500u);
}

TEST(LbtsStateTest, WindowSequenceNeverRegresses) {
  LbtsState lbts(2);
  LinkLatencyTable latency(2, /*uniform_us=*/10);
  SimTime bound = lbts.bound();
  std::vector<SimTime> floors = {100, 130};
  for (int round = 0; round < 20; ++round) {
    const SimTime next = lbts.NextBound(floors, latency);
    ASSERT_NE(next, kSimTimeNever);
    ASSERT_GT(next, bound) << "LBTS bound regressed at round " << round;
    lbts.OpenWindow(next);
    bound = next;
    floors[0] = next + 1 + static_cast<SimTime>(round % 3);
    floors[1] = next + 5;
  }
  EXPECT_EQ(lbts.epoch(), 20u);
}

TEST(LbtsStateTest, PublishProtocolVisibleToCoordinatorView) {
  LbtsState lbts(2);
  // Fresh slots are born done for epoch 0; a real window resets the contract.
  lbts.OpenWindow(2000);
  lbts.MarkBusy(0);
  LbtsState::ShardView view = lbts.View();
  EXPECT_TRUE(view.any_busy);
  EXPECT_FALSE(view.all_done) << "nobody has published for the new epoch yet";

  lbts.PublishIdle(0, lbts.epoch(), 2100);
  lbts.PublishIdle(1, lbts.epoch(), kSimTimeNever);
  view = lbts.View();
  EXPECT_FALSE(view.any_busy);
  EXPECT_TRUE(view.all_done);
  ASSERT_EQ(view.floors.size(), 2u);
  EXPECT_EQ(view.floors[0], 2100u);
  EXPECT_EQ(view.floors[1], kSimTimeNever);

  // The next window invalidates the published epochs until shards republish.
  lbts.OpenWindow(3000);
  view = lbts.View();
  EXPECT_FALSE(view.all_done);
  lbts.PublishIdle(0, lbts.epoch(), 3100);
  lbts.PublishIdle(1, lbts.epoch(), 3200);
  EXPECT_TRUE(lbts.View().all_done);
}

TEST(LbtsStateTest, ViewSameDetectsFloorChanges) {
  LbtsState lbts(2);
  lbts.PublishIdle(0, 0, 100);
  lbts.PublishIdle(1, 0, 200);
  const LbtsState::ShardView a = lbts.View();
  EXPECT_TRUE(a.Same(lbts.View()));
  lbts.PublishIdle(1, 0, 300);  // same epoch, moved floor
  EXPECT_FALSE(a.Same(lbts.View()));
}

TEST(LbtsStateTest, ViewReportsTightConsumersAndSameDetectsTheEdge) {
  LbtsState lbts(2);
  lbts.PublishIdle(0, 0, 100);
  lbts.PublishIdle(1, 0, 200);
  const LbtsState::ShardView relaxed = lbts.View();
  EXPECT_FALSE(relaxed.any_tight);
  lbts.PublishIdle(1, 0, 200, /*tight=*/true);  // migration offer left shard 1
  const LbtsState::ShardView tight = lbts.View();
  EXPECT_TRUE(tight.any_tight);
  EXPECT_FALSE(relaxed.Same(tight)) << "a tight edge must invalidate the snapshot pair";
}

TEST(LbtsStateTest, EverWideLatchesOnFirstWideWindow) {
  LbtsState lbts(2);
  EXPECT_FALSE(lbts.ever_wide());
  lbts.OpenWindow(1000);
  EXPECT_FALSE(lbts.ever_wide()) << "a strictly conservative window must not latch";
  lbts.OpenWindow(2000, /*wide=*/true);
  EXPECT_TRUE(lbts.ever_wide());
  lbts.OpenWindow(3000);
  EXPECT_TRUE(lbts.ever_wide()) << "the latch is sticky for the rest of the run";
}

// ---------------------------------------------------------------------------
// AdaptiveLookahead: learning, shrinking, collapse.
// ---------------------------------------------------------------------------

// Drive `count` sends on src->dst spaced `gap` apart, starting after whatever
// timestamp the link last saw.
void SendsWithGap(AdaptiveLookahead& adaptive, MachineId src, MachineId dst, SimTime start,
                  SimDuration gap, int count) {
  for (int i = 0; i < count; ++i) {
    adaptive.Observe(src, dst, start + static_cast<SimTime>(i) * gap);
  }
}

TEST(AdaptiveLookaheadTest, StartsAtStaticFloorAndFirstSendOnlyRecords) {
  LinkLatencyTable table(2, /*uniform_us=*/100);
  AdaptiveLookahead adaptive(table, /*growth_cap=*/64, /*window=*/4);
  EXPECT_EQ(adaptive.FromSource(0), 100u);
  EXPECT_FALSE(adaptive.Observe(0, 1, 5000)) << "a first send has no gap to learn from";
  EXPECT_EQ(adaptive.FromSource(0), 100u);
}

TEST(AdaptiveLookaheadTest, GrowthIsWindowedAtMostDoublePerWindowAndCapped) {
  LinkLatencyTable table(2, /*uniform_us=*/100);
  AdaptiveLookahead adaptive(table, /*growth_cap=*/4, /*window=*/4);
  // 1 recording send + 4 gaps of 1000us = one full observation window.
  SendsWithGap(adaptive, 0, 1, 0, 1000, 5);
  EXPECT_EQ(adaptive.FromSource(0), 200u) << "one window may at most double the estimate";
  SendsWithGap(adaptive, 0, 1, 10'000, 1000, 4);
  EXPECT_EQ(adaptive.FromSource(0), 400u);
  SendsWithGap(adaptive, 0, 1, 20'000, 1000, 4);
  EXPECT_EQ(adaptive.FromSource(0), 400u) << "growth_cap * static is the ceiling";
}

TEST(AdaptiveLookaheadTest, ShrinkIsImmediateAndNeverBelowStatic) {
  LinkLatencyTable table(2, /*uniform_us=*/100);
  AdaptiveLookahead adaptive(table, /*growth_cap=*/64, /*window=*/4);
  SendsWithGap(adaptive, 0, 1, 0, 1000, 5);
  ASSERT_EQ(adaptive.FromSource(0), 200u);
  // A single closer-spaced send shrinks mid-window -- no waiting.
  EXPECT_TRUE(adaptive.Observe(0, 1, 4150));  // 150us after the last send at 4000
  EXPECT_EQ(adaptive.FromSource(0), 150u);
  EXPECT_TRUE(adaptive.Observe(0, 1, 4160));  // 10us gap clamps at the static floor
  EXPECT_EQ(adaptive.FromSource(0), 100u);
  EXPECT_FALSE(adaptive.Observe(0, 1, 4165)) << "already at the floor: nothing shrank";
  EXPECT_EQ(adaptive.FromSource(0), 100u);
}

TEST(AdaptiveLookaheadTest, CollapseResetsToStaticFloor) {
  LinkLatencyTable table(2, /*uniform_us=*/100);
  AdaptiveLookahead adaptive(table, /*growth_cap=*/64, /*window=*/4);
  SendsWithGap(adaptive, 0, 1, 0, 1000, 5);
  ASSERT_EQ(adaptive.FromSource(0), 200u);
  EXPECT_TRUE(adaptive.Collapse(0)) << "the published value shrank back to static";
  EXPECT_EQ(adaptive.FromSource(0), 100u);
  EXPECT_FALSE(adaptive.Collapse(0)) << "already at the floor";
  // Learning restarts cleanly after the collapse.
  SendsWithGap(adaptive, 0, 1, 50'000, 1000, 4);
  EXPECT_EQ(adaptive.FromSource(0), 200u);
}

TEST(AdaptiveLookaheadTest, PublishedIsMinOverObservedLinks) {
  LinkLatencyTable table(3, /*uniform_us=*/100);
  AdaptiveLookahead adaptive(table, /*growth_cap=*/64, /*window=*/4);
  SendsWithGap(adaptive, 0, 1, 0, 1000, 5);
  ASSERT_EQ(adaptive.FromSource(0), 200u) << "only 0->1 observed so far";
  // A second destination with tight spacing drags the source estimate down:
  // the published value must be safe for the busiest outgoing link.
  adaptive.Observe(0, 2, 9000);
  EXPECT_TRUE(adaptive.Observe(0, 2, 9010));
  EXPECT_EQ(adaptive.FromSource(0), 100u);
  EXPECT_EQ(adaptive.FromSource(1), 100u) << "other sources are untouched";
}

TEST(LbtsStateTest, RelaxedBoundNeverBelowTightAndReportsWidening) {
  LbtsState lbts(2);
  LinkLatencyTable latency(2, /*uniform_us=*/100);
  const std::vector<SimTime> floors = {1000, 2000};
  ASSERT_EQ(lbts.NextBound(floors, latency), 1099u);

  bool widened = true;
  // No adaptive state and no wide span: identical to the conservative bound.
  EXPECT_EQ(lbts.NextRelaxedBound(floors, latency, nullptr, 0, &widened), 1099u);
  EXPECT_FALSE(widened);
  // A wide span measures from the minimum floor.
  EXPECT_EQ(lbts.NextRelaxedBound(floors, latency, nullptr, 800, &widened), 1799u);
  EXPECT_TRUE(widened);
}

TEST(LbtsStateTest, RelaxedBoundUsesLearnedLookaheadPerSource) {
  LbtsState lbts(2);
  LinkLatencyTable latency(2, /*uniform_us=*/100);
  AdaptiveLookahead adaptive(latency, /*growth_cap=*/64, /*window=*/4);
  SendsWithGap(adaptive, 0, 1, 0, 1000, 5);
  ASSERT_EQ(adaptive.FromSource(0), 200u);

  const std::vector<SimTime> floors = {1000, 2000};
  bool widened = false;
  // min(1000 + 200 - 1, 2000 + 100 - 1) = 1199, above the tight 1099.
  EXPECT_EQ(lbts.NextRelaxedBound(floors, latency, &adaptive, 0, &widened), 1199u);
  EXPECT_TRUE(widened);
}

TEST(LbtsStateTest, RelaxedBoundPreservesQuiescenceSignal) {
  LbtsState lbts(2);
  LinkLatencyTable latency(2, /*uniform_us=*/100);
  bool widened = true;
  EXPECT_EQ(lbts.NextRelaxedBound({kSimTimeNever, kSimTimeNever}, latency, nullptr, 1'000'000,
                                  &widened),
            kSimTimeNever)
      << "a wide span must not turn a quiescent cluster into a live one";
  EXPECT_FALSE(widened);
}

// ---------------------------------------------------------------------------
// ShardRouter: send timestamps and the timed drain.
// ---------------------------------------------------------------------------

TEST(ShardRouterTimedTest, FramesCarrySenderClockAndDrainTimedHandsThemOver) {
  ShardRouter router(2);
  EventQueue clock0;
  router.SetClock(0, &clock0);
  router.Attach(1, [](MachineId, PayloadRef) { FAIL() << "timed drain must not deliver"; });

  clock0.At(700, [] {});
  ASSERT_TRUE(clock0.Step());  // sender's clock now reads 700

  ByteWriter w;
  w.U32(42);
  router.Send(0, 1, w.Take());

  std::vector<std::pair<MachineId, SimTime>> seen;
  const std::size_t drained =
      router.DrainTimed(1, 16, [&](MachineId src, SimTime send_ts, PayloadRef payload) {
        ByteReader r(payload);
        EXPECT_EQ(r.U32(), 42u);
        seen.emplace_back(src, send_ts);
      });
  EXPECT_EQ(drained, 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 0);
  EXPECT_EQ(seen[0].second, 700u);
  EXPECT_EQ(router.sent(), router.consumed()) << "sink return = frame consumed";
}

TEST(ShardRouterTimedTest, BatchedFramesKeepExactSendTimesAndNeverAdmitThePast) {
  // Safety property behind batching + conservative sync: a batch is published
  // with the EARLIEST staged send_ts as its MailItem timestamp (the value LBTS
  // floor accounting sees), while every frame inside keeps its own exact
  // clock reading.  Earliest-first means the conservative bound derived from
  // the batch head is <= every frame it admits, so no frame can be scheduled
  // into the receiver's past.
  ShardRouterConfig config;
  config.max_batch_frames = 8;
  ShardRouter router(2, config);
  router.SetBatchingEnabled(true);
  EventQueue clock0;
  router.SetClock(0, &clock0);

  clock0.At(700, [] {});
  ASSERT_TRUE(clock0.Step());  // sender's clock reads 700
  router.Send(0, 1, Bytes{1});
  clock0.At(900, [] {});
  ASSERT_TRUE(clock0.Step());  // ...then 900, same drain round, same lane
  router.Send(0, 1, Bytes{2});

  EXPECT_EQ(router.StagedFrames(0), 2u) << "both frames staged in one lane";
  router.Flush(0);  // one publish for the whole lane
  EXPECT_EQ(router.StagedFrames(0), 0u);

  std::vector<SimTime> stamps;
  EXPECT_EQ(router.DrainTimed(1, 16,
                              [&](MachineId src, SimTime send_ts, PayloadRef) {
                                EXPECT_EQ(src, 0);
                                stamps.push_back(send_ts);
                              }),
            2u);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], 700u) << "frame keeps its own send time, not the batch's";
  EXPECT_EQ(stamps[1], 900u);
  // FIFO staging makes the batch head the earliest frame: every frame's exact
  // timestamp is >= the conservative value the batch was admitted under.
  EXPECT_LE(stamps[0], stamps[1]);
  EXPECT_EQ(router.sent(), router.consumed());
}

TEST(ShardRouterTimedTest, UnregisteredSenderStampsZeroAndDeliverRunsHandler) {
  ShardRouter router(2);
  int delivered = 0;
  router.Attach(1, [&](MachineId src, PayloadRef) {
    EXPECT_EQ(src, 0);
    ++delivered;
  });
  router.Send(0, 1, Bytes{1});  // no clock registered: staging-time send
  SimTime stamped = 99;
  EXPECT_EQ(router.DrainTimed(1, 16,
                              [&](MachineId src, SimTime send_ts, PayloadRef payload) {
                                stamped = send_ts;
                                router.Deliver(1, src, std::move(payload));
                              }),
            1u);
  EXPECT_EQ(stamped, 0u);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace demos
