// Migration tests (Sec. 3): the 8-step protocol, its exact administrative
// cost, state transparency, autonomy, and exactly-once delivery under races.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace demos {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    GlobalCapture().clear();
  }
};

TEST_F(MigrationTest, ProcessMovesAndKeepsIdentity) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);

  EXPECT_EQ(cluster.kernel(0).FindProcess(addr->pid), nullptr);
  ProcessRecord* moved = cluster.kernel(1).FindProcess(addr->pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->pid, addr->pid);  // "the same process identifier" (step 3)
  EXPECT_EQ(moved->state, ExecState::kWaiting);
  EXPECT_EQ(moved->migration_history, std::vector<MachineId>{0});

  // Source keeps a forwarding address (step 7).
  const auto* entry = cluster.kernel(0).process_table().FindEntry(addr->pid);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->IsForwarding());
  EXPECT_EQ(entry->forward_to, 1);
}

TEST_F(MigrationTest, UsesExactlyNineAdminMessages) {
  // Sec. 6: "The current DEMOS/MP implementation uses 9 such messages."
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  const std::int64_t before = cluster.TotalStat(stat::kAdminMsgs);

  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);

  EXPECT_EQ(cluster.TotalStat(stat::kAdminMsgs) - before, 9);
}

TEST_F(MigrationTest, AdminPayloadsAreSmall) {
  // Sec. 6: administrative messages are "in the 6-12 byte range"; ours are
  // 9-24 bytes (the offer carries three 32-bit section sizes, and every
  // message from the offer onward a 32-bit attempt number for the watchdog's
  // stale-epoch filtering).
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);

  StatsRegistry total = cluster.TotalStats();
  const Distribution* sizes = total.GetDistribution("admin_payload_bytes");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), 9u);
  EXPECT_GE(sizes->Min(), 6.0);
  EXPECT_LE(sizes->Max(), 24.0);
}

TEST_F(MigrationTest, ThreeDataMovesPerMigration) {
  // Steps 4-5: resident state, swappable state, and the memory image each
  // travel as one pulled stream.
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle", 2048, 1024, 512);
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();

  StatsRegistry before = cluster.TotalStats();
  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);
  StatsRegistry after = cluster.TotalStats();

  const Distribution* resident = after.GetDistribution("resident_state_bytes");
  const Distribution* swappable = after.GetDistribution("swappable_state_bytes");
  const Distribution* image = after.GetDistribution("memory_image_bytes");
  ASSERT_NE(resident, nullptr);
  ASSERT_NE(swappable, nullptr);
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(resident->count(), 1u);
  EXPECT_GT(image->Min(), 2048.0 + 1024 + 512 - 1);
  // All bytes arrived: data bytes >= the three sections.
  const std::int64_t moved = after.Get(stat::kDataBytes) - before.Get(stat::kDataBytes);
  EXPECT_GE(moved, static_cast<std::int64_t>(resident->Sum() + swappable->Sum() + image->Sum()));
}

TEST_F(MigrationTest, CounterStateIsTransparentAcrossMigration) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  for (int i = 0; i < 3; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  }
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);
  for (int i = 0; i < 4; ++i) {
    cluster.kernel(0).SendFromKernel(ProcessAddress{1, counter->pid}, kIncrement, {});
  }
  cluster.RunUntilIdle();

  ProcessRecord* record = cluster.kernel(1).FindProcess(counter->pid);
  ASSERT_NE(record, nullptr);
  ByteReader data(record->memory.ReadData(0, 8));
  EXPECT_EQ(data.U64(), 7u);  // data segment moved intact and kept counting

  // Program-private state (SaveState/RestoreState) also moved: 7 handled.
  EXPECT_EQ(record->messages_handled, 7u);
}

TEST_F(MigrationTest, DispatchInfoAndKernelContextMoveBitForBit) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  ProcessRecord* original = cluster.kernel(0).FindProcess(addr->pid);
  const DispatchInfo dispatch_before = original->dispatch;
  const Bytes context_before = original->kernel_context;
  const std::uint64_t cpu_before = original->cpu_used_us;

  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);

  ProcessRecord* moved = cluster.kernel(1).FindProcess(addr->pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->dispatch, dispatch_before);
  EXPECT_EQ(moved->kernel_context, context_before);
  EXPECT_EQ(moved->cpu_used_us, cpu_before);
}

TEST_F(MigrationTest, LinkTableMovesWithProcess) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("relay");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  Link held;
  held.address = ProcessAddress{1, {1, 99}};
  held.flags = kLinkDataRead;
  held.data_offset = 4;
  held.data_length = 44;
  cluster.kernel(0).FindProcess(addr->pid)->links.Insert(held);

  testutil::MigrateAndSettle(cluster, addr->pid, 0, 1);

  ProcessRecord* moved = cluster.kernel(1).FindProcess(addr->pid);
  ASSERT_NE(moved, nullptr);
  ASSERT_NE(moved->links.Get(0), nullptr);
  EXPECT_EQ(*moved->links.Get(0), held);  // links are context-independent
}

TEST_F(MigrationTest, PendingMessagesAreForwardedAndDelivered) {
  // Step 6: messages queued when migration starts, or arriving during it,
  // are re-sent to the new location.
  Cluster cluster(ClusterConfig{.machines = 2});
  auto counter = cluster.kernel(0).SpawnProcess("counter", 64 * 1024, 16 * 1024, 4096);
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  // Start the migration but do not settle; the big image keeps it in flight.
  ASSERT_TRUE(
      cluster.kernel(0).StartMigration(counter->pid, 1, cluster.kernel(0).kernel_address()).ok());
  cluster.RunFor(50);  // request is now being processed; process frozen

  for (int i = 0; i < 6; ++i) {
    cluster.kernel(1).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
    cluster.RunFor(30);
  }
  cluster.RunUntilIdle();

  ProcessRecord* moved = cluster.kernel(1).FindProcess(counter->pid);
  ASSERT_NE(moved, nullptr);
  ByteReader data(moved->memory.ReadData(0, 8));
  EXPECT_EQ(data.U64(), 6u);
  EXPECT_GT(cluster.kernel(0).stats().Get(stat::kPendingForwarded), 0);
}

TEST_F(MigrationTest, TimerFiresExactlyOnceAfterMigration) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto timer = cluster.kernel(0).SpawnProcess("timer");
  ASSERT_TRUE(timer.ok());
  cluster.RunFor(100);  // OnStart ran, timer armed ~50ms out

  // Settling runs the cluster to idle, which includes the re-armed timer
  // firing on the destination.
  testutil::MigrateAndSettle(cluster, timer->pid, 0, 1);
  cluster.RunFor(100'000);
  cluster.RunUntilIdle();

  ProcessRecord* moved = cluster.kernel(1).FindProcess(timer->pid);
  ASSERT_NE(moved, nullptr);
  ByteReader fired(moved->memory.ReadData(8, 8));
  EXPECT_EQ(fired.U64(), 1u);  // once, on the destination
  EXPECT_TRUE(moved->timers.empty());
}

TEST_F(MigrationTest, SuspendedProcessStaysSuspended) {
  // Step 1: "No change is made to the recorded state of the process."
  Cluster cluster(ClusterConfig{.machines = 2});
  ProcessAddress sink = [&] {
    auto a = cluster.kernel(0).SpawnProcess("sink");
    cluster.RunUntilIdle();
    testutil::TagProcess(cluster, *a, 50);
    return *a;
  }();

  cluster.kernel(1).SendFromKernel(sink, MsgType::kSuspendProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  testutil::MigrateAndSettle(cluster, sink.pid, 0, 1);

  ProcessRecord* moved = cluster.kernel(1).FindProcess(sink.pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->state, ExecState::kSuspended);

  cluster.kernel(0).SendFromKernel(ProcessAddress{0, sink.pid}, kNote, {9});
  cluster.RunUntilIdle();
  EXPECT_TRUE(testutil::CapturedFor(50).empty());  // still suspended

  // Resume via DELIVERTOKERNEL addressed to the *old* machine: control
  // follows the process (Sec. 2.2).
  cluster.kernel(0).SendFromKernel(ProcessAddress{0, sink.pid}, MsgType::kResumeProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  EXPECT_EQ(testutil::CapturedFor(50).size(), 1u);
}

TEST_F(MigrationTest, DestinationCanRefuse) {
  // Sec. 3.2: "If the destination machine refuses, the process cannot be
  // migrated" -- and it keeps running at the source.
  ClusterConfig config;
  config.machines = 2;
  config.kernel.accept_migration = [](const MigrateOffer&) { return false; };
  Cluster cluster(config);
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);

  ASSERT_NE(cluster.kernel(0).FindProcess(counter->pid), nullptr);
  EXPECT_EQ(cluster.kernel(1).FindProcess(counter->pid), nullptr);
  EXPECT_EQ(cluster.TotalStat(stat::kMigrationsRefused), 1);

  // The requester was told.
  ASSERT_EQ(cluster.kernel(0).migrate_done_log().size(), 1u);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[0].status, StatusCode::kRefused);

  // And the process still works.
  cluster.kernel(1).SendFromKernel(*counter, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader data(cluster.kernel(0).FindProcess(counter->pid)->memory.ReadData(0, 8));
  EXPECT_EQ(data.U64(), 1u);
}

TEST_F(MigrationTest, DestinationRefusesWhenOutOfMemory) {
  ClusterConfig config;
  config.machines = 2;
  config.kernel.memory_limit_bytes = 32 * 1024;
  Cluster cluster(config);
  auto big = cluster.kernel(0).SpawnProcess("idle", 16 * 1024, 8 * 1024, 4096);
  auto hog = cluster.kernel(1).SpawnProcess("idle", 16 * 1024, 8 * 1024, 4096);
  ASSERT_TRUE(big.ok() && hog.ok());
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, big->pid, 0, 1);
  ASSERT_NE(cluster.kernel(0).FindProcess(big->pid), nullptr);
  ASSERT_EQ(cluster.kernel(0).migrate_done_log().size(), 1u);
  EXPECT_EQ(cluster.kernel(0).migrate_done_log()[0].status, StatusCode::kExhausted);
}

TEST_F(MigrationTest, RequesterIsNotifiedOnSuccess) {
  Cluster cluster(ClusterConfig{.machines = 3});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  // Requester is machine 2's kernel, a third party.
  ASSERT_TRUE(
      cluster.kernel(0).StartMigration(addr->pid, 1, cluster.kernel(2).kernel_address()).ok());
  cluster.RunUntilIdle();
  ASSERT_EQ(cluster.kernel(2).migrate_done_log().size(), 1u);
  EXPECT_EQ(cluster.kernel(2).migrate_done_log()[0].status, StatusCode::kOk);
  EXPECT_EQ(cluster.kernel(2).migrate_done_log()[0].final_home, 1);
  EXPECT_EQ(cluster.kernel(2).migrate_done_log()[0].pid, addr->pid);
}

TEST_F(MigrationTest, MigrateToSelfIsNoop) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto addr = cluster.kernel(0).SpawnProcess("idle");
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  const std::int64_t admin_before = cluster.TotalStat(stat::kAdminMsgs);
  testutil::MigrateAndSettle(cluster, addr->pid, 0, 0);
  EXPECT_NE(cluster.kernel(0).FindProcess(addr->pid), nullptr);
  // Only the request itself; no offer/accept/pull protocol.
  EXPECT_EQ(cluster.TotalStat(stat::kAdminMsgs) - admin_before, 2);  // request + done
}

TEST_F(MigrationTest, ChainOfMigrationsLeavesForwardingChain) {
  Cluster cluster(ClusterConfig{.machines = 4});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);
  testutil::MigrateAndSettle(cluster, counter->pid, 1, 2);
  testutil::MigrateAndSettle(cluster, counter->pid, 2, 3);

  ProcessRecord* moved = cluster.kernel(3).FindProcess(counter->pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->migration_history, (std::vector<MachineId>{0, 1, 2}));

  // A message sent with the original (machine-0) address traverses the chain.
  cluster.kernel(0).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader data(moved->memory.ReadData(0, 8));
  EXPECT_EQ(data.U64(), 1u);
}

TEST_F(MigrationTest, ProcessCanMigrateBackToMachineItLeft) {
  // Returning home finds a stale forwarding entry for the pid; the arriving
  // process must supersede it, not be refused (a live record still refuses --
  // see DestinationCanRefuse).
  Cluster cluster(ClusterConfig{.machines = 2});
  auto counter = cluster.kernel(0).SpawnProcess("counter");
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);
  testutil::MigrateAndSettle(cluster, counter->pid, 1, 0);

  ProcessRecord* home = cluster.kernel(0).FindProcess(counter->pid);
  ASSERT_NE(home, nullptr);
  EXPECT_EQ(home->migration_history, (std::vector<MachineId>{0, 1}));
  EXPECT_EQ(cluster.TotalStat("forwarding_superseded"), 1);

  // Machine 1 now forwards, and the returned process is fully reachable.
  cluster.kernel(1).SendFromKernel(ProcessAddress{1, counter->pid}, kIncrement, {});
  cluster.RunUntilIdle();
  ByteReader data(home->memory.ReadData(0, 8));
  EXPECT_EQ(data.U64(), 1u);

  // Round trip again: the supersede works repeatedly.
  testutil::MigrateAndSettle(cluster, counter->pid, 0, 1);
  testutil::MigrateAndSettle(cluster, counter->pid, 1, 0);
  EXPECT_NE(cluster.kernel(0).FindProcess(counter->pid), nullptr);
  EXPECT_EQ(cluster.TotalStat("forwarding_superseded"), 3);
}

TEST_F(MigrationTest, VoluntaryMigrationViaRequestMigration) {
  Cluster cluster(ClusterConfig{.machines = 2});
  auto nomad = cluster.kernel(0).SpawnProcess("nomad");
  ASSERT_TRUE(nomad.ok());
  cluster.RunUntilIdle();

  ByteWriter w;
  w.U16(1);
  cluster.kernel(0).SendFromKernel(*nomad, kGoTo, w.Take());
  cluster.RunUntilIdle();

  EXPECT_EQ(cluster.kernel(0).FindProcess(nomad->pid), nullptr);
  EXPECT_NE(cluster.kernel(1).FindProcess(nomad->pid), nullptr);
}

TEST_F(MigrationTest, BackToBackMigrationRequestsOnlyFirstWins) {
  Cluster cluster(ClusterConfig{.machines = 3});
  auto addr = cluster.kernel(0).SpawnProcess("idle", 32 * 1024, 8192, 4096);
  ASSERT_TRUE(addr.ok());
  cluster.RunUntilIdle();
  ASSERT_TRUE(
      cluster.kernel(0).StartMigration(addr->pid, 1, cluster.kernel(0).kernel_address()).ok());
  ASSERT_TRUE(
      cluster.kernel(0).StartMigration(addr->pid, 2, cluster.kernel(0).kernel_address()).ok());
  cluster.RunUntilIdle();
  // The first request migrates to m1; the second was either rejected as
  // already-in-migration or executed afterwards from m1 -- in both cases the
  // process must exist in exactly one place.
  int live = 0;
  for (MachineId m = 0; m < 3; ++m) {
    live += cluster.kernel(m).FindProcess(addr->pid) != nullptr ? 1 : 0;
  }
  EXPECT_EQ(live, 1);
}

// Property: regardless of when the migration is injected relative to a
// stream of increments, every increment is applied exactly once.
class MigrationRaceSweep : public MigrationTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(MigrationRaceSweep, ExactlyOnceDelivery) {
  Cluster cluster(ClusterConfig{.machines = 3});
  auto counter = cluster.kernel(0).SpawnProcess("counter", 16 * 1024, 8192, 2048);
  ASSERT_TRUE(counter.ok());
  cluster.RunUntilIdle();

  constexpr int kMessages = 40;
  const SimDuration spacing = 97;
  // A client on m2 fires increments at fixed cadence, addressed to m0.
  for (int i = 0; i < kMessages; ++i) {
    cluster.queue().At(1000 + static_cast<SimTime>(i) * spacing, [&cluster, &counter]() {
      cluster.kernel(2).SendFromKernel(ProcessAddress{0, counter->pid}, kIncrement, {});
    });
  }
  // Inject the migration at the parameterized instant.
  const SimTime migrate_at = 900 + static_cast<SimTime>(GetParam()) * 131;
  cluster.queue().At(migrate_at, [&cluster, &counter]() {
    (void)cluster.kernel(0).StartMigration(counter->pid, 1,
                                           cluster.kernel(0).kernel_address());
  });
  cluster.RunUntilIdle();

  ProcessRecord* record = cluster.FindProcessAnywhere(counter->pid);
  ASSERT_NE(record, nullptr);
  ByteReader data(record->memory.ReadData(0, 8));
  EXPECT_EQ(data.U64(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(cluster.HostOf(counter->pid), 1);
}

INSTANTIATE_TEST_SUITE_P(RaceTimings, MigrationRaceSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace demos
