// Workload-program tests: CPU-bound workers, RPC pairs, and their behaviour
// across migration (the E8/E12 building blocks).

#include <gtest/gtest.h>

#include "src/workload/programs.h"
#include "tests/sys_test_util.h"

namespace demos {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::RegisterPrograms();
    RegisterWorkloadPrograms();
  }

  ProcessAddress SpawnCpuBound(Cluster& cluster, MachineId machine,
                               const CpuBoundConfig& config) {
    auto addr = cluster.kernel(machine).SpawnProcess("cpu_bound");
    EXPECT_TRUE(addr.ok());
    (void)cluster.kernel(machine).FindProcess(addr->pid)->memory.WriteData(0, config.Encode());
    return *addr;
  }

  std::uint64_t ReadU64(Cluster& cluster, const ProcessId& pid, std::uint32_t offset) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    if (record == nullptr) {
      return 0;
    }
    ByteReader r(record->memory.ReadData(offset, 8));
    return r.U64();
  }
};

TEST_F(WorkloadTest, CpuBoundRunsToCompletion) {
  Cluster cluster(ClusterConfig{.machines = 1});
  CpuBoundConfig config;
  config.quantum_us = 1000;
  config.period_us = 1000;
  config.total_us = 20'000;
  ProcessAddress worker = SpawnCpuBound(cluster, 0, config);
  cluster.RunUntilIdle();
  EXPECT_EQ(ReadU64(cluster, worker.pid, 32), 20'000u);  // progress
  EXPECT_EQ(ReadU64(cluster, worker.pid, 40), 1u);       // done
  EXPECT_GE(cluster.kernel(0).cpu_busy_us(), 20'000u);
}

TEST_F(WorkloadTest, CpuContentionStretchesCompletionTime) {
  // Two workers each wanting ~100% of one CPU take about twice as long as
  // one alone -- the load-balancing motivation of Sec. 1.
  auto run = [this](int n_workers) {
    Cluster cluster(ClusterConfig{.machines = 1});
    CpuBoundConfig config;
    config.quantum_us = 2000;
    config.period_us = 2000;
    config.total_us = 100'000;
    std::vector<ProcessId> workers;
    for (int i = 0; i < n_workers; ++i) {
      workers.push_back(SpawnCpuBound(cluster, 0, config).pid);
    }
    cluster.RunUntilIdle();
    SimTime last_done = 0;
    for (const ProcessId& pid : workers) {
      ProcessRecord* record = cluster.FindProcessAnywhere(pid);
      ByteReader r(record->memory.ReadData(40, 16));
      EXPECT_EQ(r.U64(), 1u);
      last_done = std::max<SimTime>(last_done, r.U64());
    }
    return last_done;
  };

  const SimTime solo = run(1);
  const SimTime contended = run(2);
  EXPECT_GT(contended, solo + solo / 2);
}

TEST_F(WorkloadTest, CpuBoundProgressSurvivesMigration) {
  Cluster cluster(ClusterConfig{.machines = 2});
  CpuBoundConfig config;
  config.quantum_us = 1000;
  config.period_us = 2000;
  config.total_us = 100'000;
  ProcessAddress worker = SpawnCpuBound(cluster, 0, config);
  cluster.RunFor(50'000);
  const std::uint64_t progress_before = ReadU64(cluster, worker.pid, 32);
  EXPECT_GT(progress_before, 0u);
  EXPECT_LT(progress_before, 100'000u);

  testutil::MigrateAndSettle(cluster, worker.pid, 0, 1);
  EXPECT_EQ(cluster.HostOf(worker.pid), 1);
  EXPECT_EQ(ReadU64(cluster, worker.pid, 32), 100'000u);
  EXPECT_EQ(ReadU64(cluster, worker.pid, 40), 1u);
}

struct RpcPair {
  ProcessAddress client;
  ProcessAddress server;
};

RpcPair SpawnRpcPair(Cluster& cluster, MachineId client_machine, MachineId server_machine,
                     const RpcClientConfig& config) {
  auto server = cluster.kernel(server_machine).SpawnProcess("rpc_server");
  auto client = cluster.kernel(client_machine).SpawnProcess("rpc_client");
  EXPECT_TRUE(server.ok() && client.ok());
  (void)cluster.kernel(client_machine)
      .FindProcess(client->pid)
      ->memory.WriteData(0, config.Encode());
  Link to_server;
  to_server.address = *server;
  cluster.kernel(client_machine).SendFromKernel(*client, kAttachTarget, {}, {to_server});
  return RpcPair{*client, *server};
}

TEST_F(WorkloadTest, RpcSeriesCompletes) {
  Cluster cluster(ClusterConfig{.machines = 2});
  RpcClientConfig config;
  config.count = 20;
  config.period_us = 1000;
  RpcPair pair = SpawnRpcPair(cluster, 0, 1, config);
  cluster.RunUntilIdle();

  RpcClientProgram* client = testutil::ProgramOf<RpcClientProgram>(cluster, pair.client.pid);
  ASSERT_NE(client, nullptr);
  ASSERT_EQ(client->samples().size(), 20u);
  for (const RpcSample& sample : client->samples()) {
    EXPECT_GT(sample.latency_us, 0u);
  }
}

TEST_F(WorkloadTest, RemoteRpcSlowerThanLocal) {
  // The affinity motivation: co-located RPC is cheaper.
  auto mean_latency = [this](MachineId client_machine, MachineId server_machine) {
    Cluster cluster(ClusterConfig{.machines = 2});
    RpcClientConfig config;
    config.count = 30;
    config.period_us = 500;
    RpcPair pair = SpawnRpcPair(cluster, client_machine, server_machine, config);
    cluster.RunUntilIdle();
    RpcClientProgram* client = testutil::ProgramOf<RpcClientProgram>(cluster, pair.client.pid);
    double total = 0;
    for (const RpcSample& sample : client->samples()) {
      total += static_cast<double>(sample.latency_us);
    }
    return total / static_cast<double>(client->samples().size());
  };

  EXPECT_GT(mean_latency(0, 1), mean_latency(0, 0));
}

TEST_F(WorkloadTest, RpcSurvivesServerMigrationMidSeries) {
  Cluster cluster(ClusterConfig{.machines = 3});
  RpcClientConfig config;
  config.count = 40;
  config.period_us = 1500;
  RpcPair pair = SpawnRpcPair(cluster, 0, 1, config);
  cluster.RunFor(20'000);  // some RPCs done

  ASSERT_TRUE(cluster.kernel(1)
                  .StartMigration(pair.server.pid, 2, cluster.kernel(1).kernel_address())
                  .ok());
  cluster.RunUntilIdle();

  RpcClientProgram* client = testutil::ProgramOf<RpcClientProgram>(cluster, pair.client.pid);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->samples().size(), 40u);  // nothing lost
  EXPECT_EQ(cluster.HostOf(pair.server.pid), 2);
}

TEST_F(WorkloadTest, RpcSamplesShowMigrationPerturbationThenRecovery) {
  // The E12 shape: latency spikes briefly around the migration, then returns
  // to (or below) its baseline.
  Cluster cluster(ClusterConfig{.machines = 3});
  RpcClientConfig config;
  config.count = 60;
  config.period_us = 2000;
  RpcPair pair = SpawnRpcPair(cluster, 0, 1, config);
  cluster.RunFor(40'000);
  (void)cluster.kernel(1).StartMigration(pair.server.pid, 2,
                                         cluster.kernel(1).kernel_address());
  cluster.RunUntilIdle();

  RpcClientProgram* client = testutil::ProgramOf<RpcClientProgram>(cluster, pair.client.pid);
  ASSERT_EQ(client->samples().size(), 60u);
  const auto& samples = client->samples();
  // Steady-state tail: the last 10 samples should look like the first 10
  // (within 3x), i.e. the perturbation did not persist.
  double head = 0;
  double tail = 0;
  for (int i = 0; i < 10; ++i) {
    head += static_cast<double>(samples[static_cast<std::size_t>(i)].latency_us);
    tail += static_cast<double>(samples[samples.size() - 1 - static_cast<std::size_t>(i)]
                                    .latency_us);
  }
  EXPECT_LT(tail, head * 3);
}

}  // namespace
}  // namespace demos
