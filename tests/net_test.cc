// Tests for the simulated network and the reliable-delivery layer.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/net/reliable_channel.h"
#include "src/net/sim_network.h"
#include "src/sim/event_queue.h"

namespace demos {
namespace {

struct Endpoint {
  std::vector<std::pair<MachineId, Bytes>> received;
  void AttachTo(Transport& t, MachineId self) {
    t.Attach(self, [this](MachineId src, PayloadRef payload) {
      received.emplace_back(src, payload.ToBytes());
    });
  }
};

Bytes Msg(std::initializer_list<std::uint8_t> bytes) { return Bytes(bytes); }

TEST(SimNetworkTest, DeliversBetweenMachines) {
  EventQueue q;
  SimNetwork net(&q, {});
  Endpoint a;
  Endpoint b;
  a.AttachTo(net, 0);
  b.AttachTo(net, 1);
  net.Send(0, 1, Msg({1, 2, 3}));
  q.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 0);
  EXPECT_EQ(b.received[0].second, Msg({1, 2, 3}));
  EXPECT_TRUE(a.received.empty());
}

TEST(SimNetworkTest, LocalDeliveryIsAsynchronousButImmediate) {
  EventQueue q;
  SimNetwork net(&q, {});
  Endpoint a;
  a.AttachTo(net, 0);
  net.Send(0, 0, Msg({9}));
  EXPECT_TRUE(a.received.empty());  // not synchronous
  q.RunUntilIdle();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(q.Now(), 0u);  // no propagation delay for local traffic
}

TEST(SimNetworkTest, PropagationDelayApplies) {
  SimNetworkConfig config;
  config.propagation_us = 250;
  config.bandwidth_bytes_per_us = 1e9;  // effectively no serialization delay
  EventQueue q;
  SimNetwork net(&q, config);
  Endpoint b;
  b.AttachTo(net, 1);
  net.Send(0, 1, Msg({1}));
  q.RunUntilIdle();
  EXPECT_EQ(q.Now(), 250u);
}

TEST(SimNetworkTest, BandwidthSerializesLargePayloads) {
  SimNetworkConfig config;
  config.propagation_us = 0;
  config.bandwidth_bytes_per_us = 10.0;
  config.frame_overhead_bytes = 0;
  EventQueue q;
  SimNetwork net(&q, config);
  Endpoint b;
  b.AttachTo(net, 1);
  net.Send(0, 1, Bytes(1000, 0));  // 1000 B at 10 B/us = 100 us
  q.RunUntilIdle();
  EXPECT_EQ(q.Now(), 100u);
}

TEST(SimNetworkTest, OutputPortQueuesBackToBack) {
  SimNetworkConfig config;
  config.propagation_us = 0;
  config.bandwidth_bytes_per_us = 10.0;
  config.frame_overhead_bytes = 0;
  EventQueue q;
  SimNetwork net(&q, config);
  Endpoint b;
  b.AttachTo(net, 1);
  net.Send(0, 1, Bytes(1000, 0));
  net.Send(0, 1, Bytes(1000, 0));  // must wait for the first frame
  q.RunUntilIdle();
  EXPECT_EQ(q.Now(), 200u);
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(SimNetworkTest, InOrderWithoutJitter) {
  EventQueue q;
  SimNetwork net(&q, {});
  Endpoint b;
  b.AttachTo(net, 1);
  for (std::uint8_t i = 0; i < 50; ++i) {
    net.Send(0, 1, Msg({i}));
  }
  q.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(b.received[i].second[0], i);
  }
}

TEST(SimNetworkTest, DropInjection) {
  SimNetworkConfig config;
  config.drop_probability = 1.0;
  EventQueue q;
  SimNetwork net(&q, config);
  Endpoint b;
  b.AttachTo(net, 1);
  net.Send(0, 1, Msg({1}));
  q.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().Get(stat::kNetPacketsDropped), 1);
}

TEST(SimNetworkTest, DownNodeDropsTraffic) {
  EventQueue q;
  SimNetwork net(&q, {});
  Endpoint b;
  b.AttachTo(net, 1);
  net.SetNodeUp(1, false);
  net.Send(0, 1, Msg({1}));
  q.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  net.SetNodeUp(1, true);
  net.Send(0, 1, Msg({2}));
  q.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetworkTest, CountsBytes) {
  SimNetworkConfig config;
  config.frame_overhead_bytes = 8;
  EventQueue q;
  SimNetwork net(&q, config);
  Endpoint b;
  b.AttachTo(net, 1);
  net.Send(0, 1, Bytes(100, 0));
  q.RunUntilIdle();
  EXPECT_EQ(net.stats().Get(stat::kNetBytesSent), 108);
}

// ---------------------------------------------------------------------------
// ReliableTransport over a lossy SimNetwork: the "published communications"
// substitute must deliver everything, exactly once, in order.
// ---------------------------------------------------------------------------

TEST(ReliableTransportTest, DeliversOverPerfectNetwork) {
  EventQueue q;
  SimNetwork net(&q, {});
  ReliableTransport rel(&q, &net, {});
  Endpoint b;
  b.AttachTo(rel, 1);
  rel.Send(0, 1, Msg({42}));
  q.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, Msg({42}));
}

TEST(ReliableTransportTest, RecoversFromHeavyLoss) {
  SimNetworkConfig config;
  config.drop_probability = 0.4;
  config.seed = 1234;
  EventQueue q;
  SimNetwork net(&q, config);
  ReliableConfig rc;
  rc.retransmit_timeout_us = 500;
  ReliableTransport rel(&q, &net, rc);
  Endpoint b;
  b.AttachTo(rel, 1);
  for (std::uint8_t i = 0; i < 100; ++i) {
    rel.Send(0, 1, Msg({i}));
  }
  q.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 100u);
  for (std::uint8_t i = 0; i < 100; ++i) {
    EXPECT_EQ(b.received[i].second[0], i) << "out of order at " << int{i};
  }
  EXPECT_GT(rel.stats().Get(stat::kRelRetransmits), 0);
}

TEST(ReliableTransportTest, SuppressesDuplicates) {
  SimNetworkConfig config;
  config.duplicate_probability = 0.5;
  config.seed = 77;
  EventQueue q;
  SimNetwork net(&q, config);
  ReliableTransport rel(&q, &net, {});
  Endpoint b;
  b.AttachTo(rel, 1);
  for (std::uint8_t i = 0; i < 50; ++i) {
    rel.Send(0, 1, Msg({i}));
  }
  q.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 50u);
}

TEST(ReliableTransportTest, BidirectionalStreamsAreIndependent) {
  EventQueue q;
  SimNetwork net(&q, {});
  ReliableTransport rel(&q, &net, {});
  Endpoint a;
  Endpoint b;
  a.AttachTo(rel, 0);
  b.AttachTo(rel, 1);
  rel.Send(0, 1, Msg({1}));
  rel.Send(1, 0, Msg({2}));
  q.RunUntilIdle();
  ASSERT_EQ(a.received.size(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.received[0].second, Msg({2}));
  EXPECT_EQ(b.received[0].second, Msg({1}));
}

TEST(ReliableTransportTest, GivesUpOnDeadPeer) {
  SimNetworkConfig config;
  EventQueue q;
  SimNetwork net(&q, config);
  ReliableConfig rc;
  rc.retransmit_timeout_us = 100;
  rc.max_retries = 5;
  ReliableTransport rel(&q, &net, rc);
  Endpoint b;
  b.AttachTo(rel, 1);
  net.SetNodeUp(1, false);
  rel.Send(0, 1, Msg({1}));
  q.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(rel.stats().Get(stat::kRelGiveUps), 1);
}

// Property sweep: any loss rate up to 50% still yields exactly-once in-order
// delivery of every message.
class ReliableLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReliableLossSweep, ExactlyOnceInOrder) {
  SimNetworkConfig config;
  config.drop_probability = GetParam() / 100.0;
  config.duplicate_probability = 0.1;
  config.seed = 9000 + static_cast<std::uint64_t>(GetParam());
  EventQueue q;
  SimNetwork net(&q, config);
  ReliableConfig rc;
  rc.retransmit_timeout_us = 400;
  ReliableTransport rel(&q, &net, rc);
  Endpoint b;
  b.AttachTo(rel, 1);
  constexpr int kCount = 60;
  for (int i = 0; i < kCount; ++i) {
    rel.Send(0, 1, Msg({static_cast<std::uint8_t>(i)}));
  }
  q.RunUntilIdle();
  ASSERT_EQ(b.received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(b.received[static_cast<std::size_t>(i)].second[0], i);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, ReliableLossSweep,
                         ::testing::Values(0, 5, 10, 20, 30, 40, 50));

}  // namespace
}  // namespace demos
