// The paper's own demonstration scenario (Sec. 2.3): migrate a file-system
// process while several user processes are performing I/O.
//
// Boots the full system-process set (switchboard, process manager, memory
// scheduler, 4-process file system), starts three file clients, and moves the
// request interpreter to another machine in the middle of their runs.  Every
// operation completes; the only visible effect is a brief latency bump.
//
//   ./build/examples/fileserver_migration

#include <cstdio>

#include "src/kernel/cluster.h"
#include "src/sys/bootstrap.h"
#include "src/sys/fs/fs_client.h"

namespace demos {
namespace {

int Main() {
  Cluster cluster(ClusterConfig{.machines = 4});
  std::printf("booting DEMOS/MP system processes on a 4-machine network...\n");
  SystemLayout layout = BootSystem(cluster);
  std::printf("  switchboard      %s\n", layout.switchboard.ToString().c_str());
  std::printf("  process manager  %s\n", layout.process_manager.ToString().c_str());
  std::printf("  memory scheduler %s\n", layout.memory_scheduler.ToString().c_str());
  std::printf("  fs request intrp %s\n", layout.fs_request.ToString().c_str());
  std::printf("  fs directory     %s\n", layout.fs_directory.ToString().c_str());
  std::printf("  fs buffer mgr    %s\n", layout.fs_buffers.ToString().c_str());
  std::printf("  fs disk driver   %s (tied to its disk; never migrated)\n",
              layout.fs_disk.ToString().c_str());

  // Three user processes doing file I/O through data-area links.
  std::vector<ProcessId> clients;
  for (int i = 0; i < 3; ++i) {
    FsClientConfig config;
    config.mode = 2;  // alternate write/read
    config.io_size = 1024;
    config.op_count = 24;
    config.think_us = 800;
    config.file_name = "user_file_" + std::to_string(i);
    auto client = cluster.kernel(static_cast<MachineId>(1 + i))
                      .SpawnProcess("fs_client", 4096, kFsClientBufferOffset + 2048, 2048);
    if (!client.ok()) {
      return 1;
    }
    ProcessRecord* record =
        cluster.kernel(client->last_known_machine).FindProcess(client->pid);
    (void)record->memory.WriteData(0, config.Encode());
    clients.push_back(client->pid);
    std::printf("client %d: %s (24 ops of 1 KiB on '%s')\n", i, client->ToString().c_str(),
                config.file_name.c_str());
  }

  cluster.RunFor(8'000);
  std::printf("\n[t=%llu us] I/O in flight; migrating the request interpreter m0 -> m3\n",
              static_cast<unsigned long long>(cluster.queue().Now()));
  (void)cluster.kernel(0).StartMigration(layout.fs_request.pid, 3,
                                         cluster.kernel(0).kernel_address());

  // Run until every client reports done.
  for (int guard = 0; guard < 4000; ++guard) {
    bool all_done = true;
    for (const ProcessId& pid : clients) {
      ProcessRecord* record = cluster.FindProcessAnywhere(pid);
      FsClientResults results = FsClientResults::Decode(record->memory.ReadData(64, 40));
      all_done = all_done && results.done != 0;
    }
    if (all_done) {
      break;
    }
    cluster.RunFor(5'000);
  }

  std::printf("[t=%llu us] all clients done; request interpreter now on m%u\n\n",
              static_cast<unsigned long long>(cluster.queue().Now()),
              cluster.HostOf(layout.fs_request.pid));
  std::printf("%-8s %-10s %-8s %-14s %-12s\n", "client", "completed", "errors", "mean op us",
              "max op us");
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ProcessRecord* record = cluster.FindProcessAnywhere(clients[i]);
    FsClientResults results = FsClientResults::Decode(record->memory.ReadData(64, 40));
    const double mean =
        results.completed == 0
            ? 0.0
            : static_cast<double>(results.total_latency_us) /
                  static_cast<double>(results.completed);
    std::printf("%-8zu %-10llu %-8llu %-14.1f %-12llu\n", i,
                static_cast<unsigned long long>(results.completed),
                static_cast<unsigned long long>(results.errors), mean,
                static_cast<unsigned long long>(results.max_latency_us));
  }
  std::printf("\nmessages forwarded through m0's forwarding address: %lld\n",
              static_cast<long long>(cluster.kernel(0).stats().Get(stat::kMsgsForwarded)));
  std::printf("client/FS links lazily updated: %lld link-update messages\n",
              static_cast<long long>(cluster.TotalStat(stat::kLinkUpdateMsgs)));
  return 0;
}

}  // namespace
}  // namespace demos

int main() { return demos::Main(); }
