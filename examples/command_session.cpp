// A scripted command-interpreter session (Sec. 2.3: the command interpreter
// "allows interactive access to DEMOS/MP programs").
//
// Boots the system, hands the command interpreter a script that spawns
// workers, migrates them around, and pokes them with messages -- then, for
// good measure, migrates the command interpreter itself in the middle of its
// own script.
//
//   ./build/examples/command_session

#include <cstdio>

#include "src/kernel/cluster.h"
#include "src/sys/bootstrap.h"
#include "src/sys/command_interpreter.h"
#include "src/workload/programs.h"

namespace demos {
namespace {

int Main() {
  RegisterWorkloadPrograms();  // provides the "counter" worker program
  Cluster cluster(ClusterConfig{.machines = 3});
  BootOptions options;
  options.start_file_system = false;
  SystemLayout layout = BootSystem(cluster, options);
  (void)layout;

  auto ci = cluster.kernel(0).SpawnProcess("command_interpreter");
  if (!ci.ok()) {
    return 1;
  }
  cluster.RunFor(1000);

  const char* script =
      "print == demos/mp command session ==\n"
      "spawn worker1 counter 1\n"
      "spawn worker2 counter 2\n"
      "print two counters created on m1 and m2\n"
      "send worker1 1003\n"
      "send worker1 1003\n"
      "send worker2 1003\n"
      "wait 20000\n"
      "migrate worker1 2\n"
      "print worker1 moved to m2\n"
      "send worker1 1003\n"
      "wait 60000\n"
      "print session complete\n";
  ByteWriter w;
  w.Str(script);
  cluster.kernel(0).SendFromKernel(*ci, kCiRun, w.Take());

  // Mid-script, migrate the interpreter itself: its script, program counter,
  // aliases, and pending waits all travel in its program state.
  cluster.queue().After(30'000, [&cluster, &ci]() {
    const MachineId at = cluster.HostOf(ci->pid);
    std::printf("[harness] migrating the command interpreter m%u -> m1 mid-script\n", at);
    (void)cluster.kernel(at).StartMigration(ci->pid, 1, cluster.kernel(at).kernel_address());
  });

  for (int guard = 0; guard < 400; ++guard) {
    cluster.RunFor(5'000);
    ProcessRecord* record = cluster.FindProcessAnywhere(ci->pid);
    auto* program = dynamic_cast<CommandInterpreterProgram*>(record->program.get());
    if (program != nullptr && program->done()) {
      break;
    }
  }

  ProcessRecord* record = cluster.FindProcessAnywhere(ci->pid);
  auto* program = dynamic_cast<CommandInterpreterProgram*>(record->program.get());
  std::printf("\ninterpreter output (finished on m%u):\n", cluster.HostOf(ci->pid));
  for (const std::string& line : program->output()) {
    std::printf("  | %s\n", line.c_str());
  }

  // Verify the workers: worker1 got 3 increments (one after its migration),
  // worker2 got 1.
  std::printf("\nworker state:\n");
  for (MachineId m = 0; m < 3; ++m) {
    for (const auto& [pid, entry] : cluster.kernel(m).process_table().entries()) {
      if (entry.IsForwarding() || entry.process->memory.ProgramName() != "counter") {
        continue;
      }
      ByteReader r(entry.process->memory.ReadData(0, 8));
      std::printf("  %s on m%u: count %llu\n", pid.ToString().c_str(), m,
                  static_cast<unsigned long long>(r.U64()));
    }
  }
  return 0;
}

}  // namespace
}  // namespace demos

int main() { return demos::Main(); }
