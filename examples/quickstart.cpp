// Quickstart: the smallest complete DEMOS/MP migration.
//
// Builds a two-machine cluster, runs a counting process on machine 0, sends
// it work from machine 1, migrates it mid-computation, and shows that (a) the
// count continues seamlessly, (b) messages to the old address are forwarded,
// and (c) the sender's link is lazily updated so later messages go direct.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>
#include <memory>

#include "src/kernel/cluster.h"
#include "src/proc/program.h"

namespace demos {
namespace {

constexpr MsgType kAdd = static_cast<MsgType>(1300);

// A process whose entire observable state is a running total kept in its own
// data segment -- the thing that must survive migration bit-for-bit.
class AdderProgram final : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != kAdd || msg.payload.empty()) {
      return;
    }
    ByteReader r(ctx.ReadData(0, 8));
    const std::uint64_t total = r.U64() + msg.payload[0];
    ByteWriter w;
    w.U64(total);
    (void)ctx.WriteData(0, w.bytes());
    std::printf("  [adder @ m%u] +%u -> total %llu\n", ctx.machine(), msg.payload[0],
                static_cast<unsigned long long>(total));
  }
};

int Main() {
  ProgramRegistry::Instance().Register("adder",
                                       [] { return std::make_unique<AdderProgram>(); });

  // A two-processor DEMOS/MP network.
  Cluster cluster(ClusterConfig{.machines = 2});

  // Create the process on machine 0.
  Result<ProcessAddress> adder = cluster.kernel(0).SpawnProcess("adder");
  if (!adder.ok()) {
    std::fprintf(stderr, "spawn failed: %s\n", adder.status().ToString().c_str());
    return 1;
  }
  std::printf("spawned %s\n", adder->ToString().c_str());
  cluster.RunUntilIdle();

  std::printf("\n-- three additions before migration --\n");
  for (std::uint8_t v : {5, 7, 8}) {
    cluster.kernel(1).SendFromKernel(*adder, kAdd, {v});
  }
  cluster.RunUntilIdle();

  std::printf("\n-- migrating %s to machine 1 --\n", adder->pid.ToString().c_str());
  (void)cluster.kernel(0).StartMigration(adder->pid, 1, cluster.kernel(0).kernel_address());
  cluster.RunUntilIdle();
  std::printf("now lives on m%u; m0 keeps a forwarding address (%zu bytes of state: one "
              "process address)\n",
              cluster.HostOf(adder->pid),
              cluster.kernel(0).process_table().ForwardingAddressCount() * 8);

  std::printf("\n-- three more additions, sent to the OLD address --\n");
  for (std::uint8_t v : {10, 20, 30}) {
    cluster.kernel(1).SendFromKernel(ProcessAddress{0, adder->pid}, kAdd, {v});
  }
  cluster.RunUntilIdle();

  ProcessRecord* record = cluster.kernel(1).FindProcess(adder->pid);
  ByteReader r(record->memory.ReadData(0, 8));
  std::printf("\nfinal total: %llu (expected 80)\n",
              static_cast<unsigned long long>(r.U64()));
  std::printf("messages forwarded by m0: %lld (then link updates take over)\n",
              static_cast<long long>(cluster.kernel(0).stats().Get(stat::kMsgsForwarded)));
  std::printf("administrative messages for the migration: %lld (the paper's 9)\n",
              static_cast<long long>(cluster.TotalStat(stat::kAdminMsgs)));
  std::printf("\ncluster-wide counters:\n");
  cluster.TotalStats().Dump(std::cout);
  return 0;
}

}  // namespace
}  // namespace demos

int main() { return demos::Main(); }
