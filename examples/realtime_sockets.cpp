// Native mode: every kernel in its own OS process, messages over real UDP
// sockets on loopback -- the same kernel code that runs in the deterministic
// simulation, now driven by wall-clock time (the paper's software also ran
// unchanged on both the Z8000 network and the VAX simulator, Sec. 2).
//
// The parent forks three node processes.  Node 0 spawns a counter and, after
// some increments from node 2, migrates it to node 1; node 2 keeps sending to
// the OLD address, exercising real forwarding and link update over sockets.
//
//   ./build/examples/realtime_sockets [port_base]

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/kernel/kernel.h"
#include "src/net/udp_transport.h"
#include "src/workload/programs.h"

namespace demos {
namespace {

constexpr MsgType kIncrement = static_cast<MsgType>(1003);
constexpr int kMachines = 3;

std::uint64_t NowUs(const std::chrono::steady_clock::time_point& epoch) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

// One node: a kernel over a UDP transport, pumped in real time.  The virtual
// clock tracks the wall clock, so kernel timers and dispatch delays happen in
// real microseconds.
int NodeMain(MachineId machine, std::uint16_t port_base) {
  RegisterWorkloadPrograms();
  EventQueue queue;
  UdpTransport transport(machine, port_base);
  Status opened = transport.Open();
  if (!opened.ok()) {
    std::fprintf(stderr, "[m%u] %s\n", machine, opened.ToString().c_str());
    return 1;
  }
  KernelConfig config;
  config.seed = 1000 + machine;
  Kernel kernel(machine, &queue, &transport, config);

  const auto epoch = std::chrono::steady_clock::now();
  // The counter is the first process machine 0 spawns, so its system-wide
  // unique id is deterministic: {creating machine 0, local id 1}.  All nodes
  // can address it without any out-of-band rendezvous.
  const ProcessId counter_pid{0, 1};

  if (machine == 0) {
    auto counter = kernel.SpawnProcess("counter");
    if (!counter.ok() || counter->pid != counter_pid) {
      return 1;
    }
    std::printf("[m0] spawned %s\n", counter->ToString().c_str());
  }

  bool migrated = false;
  int sent = 0;
  std::uint64_t last_send_us = 0;
  const std::uint64_t deadline_us = 2'000'000;  // 2 wall-clock seconds

  while (NowUs(epoch) < deadline_us) {
    transport.Wait(/*timeout_ms=*/1);
    queue.RunUntil(NowUs(epoch));

    // Node-specific behaviour, keyed off real time.
    const std::uint64_t now = NowUs(epoch);
    if (machine == 0 && !migrated && now > 600'000) {
      migrated = true;
      std::printf("[m0] t=%.1f ms: migrating the counter to m1 over UDP\n", now / 1000.0);
      (void)kernel.StartMigration(counter_pid, 1, kernel.kernel_address());
    }
    if (machine == 2 && sent < 10 && now > 200'000 &&
        now - last_send_us > 150'000) {
      ++sent;
      last_send_us = now;
      // Always the ORIGINAL address: after the move these get forwarded.
      kernel.SendFromKernel(ProcessAddress{0, counter_pid}, kIncrement, {});
    }
  }

  // Harvest: the kernel that ends up hosting the counter reports the total.
  {
    ProcessRecord* record = kernel.FindProcess(counter_pid);
    if (record != nullptr) {
      ByteReader r(record->memory.ReadData(0, 8));
      std::printf("[m%u] hosts the counter at exit: count=%llu (expect 10), "
                  "forwarded-by-m0=%lld\n",
                  machine, static_cast<unsigned long long>(r.U64()),
                  static_cast<long long>(kernel.stats().Get(stat::kMsgsForwarded)));
    } else if (machine == 0) {
      std::printf("[m0] counter gone as expected; forwarding addresses here: %zu, "
                  "messages forwarded: %lld\n",
                  kernel.process_table().ForwardingAddressCount(),
                  static_cast<long long>(kernel.stats().Get(stat::kMsgsForwarded)));
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  const auto port_base = static_cast<std::uint16_t>(
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 29950);

  std::printf("forking %d kernel processes on UDP ports %u..%u\n", kMachines, port_base,
              port_base + kMachines - 1);
  std::fflush(stdout);  // don't let children replay the buffered banner
  pid_t children[kMachines];
  for (MachineId m = 0; m < kMachines; ++m) {
    pid_t child = fork();
    if (child == 0) {
      std::exit(NodeMain(m, port_base));
    }
    children[m] = child;
  }
  int status = 0;
  bool ok = true;
  for (pid_t child : children) {
    waitpid(child, &status, 0);
    ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  std::printf("%s\n", ok ? "all nodes exited cleanly" : "a node failed");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace demos

int main(int argc, char** argv) { return demos::Main(argc, argv); }
