// Fault tolerance (Sec. 1): "working processes may be migrated from a dying
// processor (like rats leaving a sinking ship) before it completely fails."
//
// Machine 2 starts to fail; the process manager evacuates it before the hard
// crash.  One unlucky process that did NOT make it off in time is then
// recovered from a stable-storage checkpoint instead -- the paper's crashed-
// processor "migration".
//
//   ./build/examples/sinking_ship

#include <cstdio>

#include "src/fault/crash.h"
#include "src/fault/recovery.h"
#include "src/kernel/cluster.h"
#include "src/sys/bootstrap.h"
#include "src/sys/process_manager.h"
#include "src/workload/programs.h"

namespace demos {
namespace {

constexpr MsgType kIncrement = static_cast<MsgType>(1003);

// Same behaviour as the test-suite counter: count at data[0..8).
class DeckhandProgram final : public Program {
 public:
  void OnMessage(Context& ctx, const Message& msg) override {
    if (msg.type != kIncrement) {
      return;
    }
    ByteReader r(ctx.ReadData(0, 8));
    ByteWriter w;
    w.U64(r.U64() + 1);
    (void)ctx.WriteData(0, w.bytes());
  }
};

int Main() {
  RegisterWorkloadPrograms();  // provides the "sink" reply absorber
  ProgramRegistry::Instance().Register("deckhand",
                                       [] { return std::make_unique<DeckhandProgram>(); });
  Cluster cluster(ClusterConfig{.machines = 3});
  BootOptions options;
  options.start_file_system = false;
  SystemLayout layout = BootSystem(cluster, options);
  CrashController crash(&cluster);
  StableStore stable_store;

  // Four deckhands working aboard machine 2, created through the process
  // manager so it can evacuate them.
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  cluster.RunFor(1000);
  for (int i = 0; i < 4; ++i) {
    ByteWriter w;
    w.U64(static_cast<std::uint64_t>(i));
    w.Str("deckhand");
    w.U16(2);
    w.U32(4096);
    w.U32(1024);
    w.U32(512);
    Link reply;
    reply.address = *sink;
    reply.flags = kLinkReply;
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmCreate, w.Take(), {reply});
  }
  cluster.RunFor(30'000);
  std::vector<ProcessId> crew;
  for (const auto& [pid, entry] : cluster.kernel(2).process_table().entries()) {
    if (!entry.IsForwarding() && entry.process->memory.ProgramName() == "deckhand") {
      crew.push_back(pid);
    }
  }
  std::printf("%zu deckhands working on machine 2\n", crew.size());
  for (const ProcessId& pid : crew) {
    for (int i = 0; i < 3; ++i) {
      cluster.kernel(0).SendFromKernel(ProcessAddress{2, pid}, kIncrement, {});
    }
  }
  cluster.RunFor(20'000);

  // One crew member is checkpointed to stable storage as a belt-and-braces
  // measure (it will be the one left behind).
  const ProcessId unlucky = crew.back();
  (void)stable_store.Checkpoint(cluster, unlucky);
  std::printf("checkpointed %s to stable storage\n", unlucky.ToString().c_str());

  std::printf("\n[t=%llu us] machine 2 is degrading; hard crash in 120 ms\n",
              static_cast<unsigned long long>(cluster.queue().Now()));
  crash.DegradeThenCrash(2, 120'000);

  // Evacuate all but the unlucky one (pin it so the PM leaves it behind --
  // simulating a process the evacuation could not reach in time).
  {
    ByteWriter w;
    w.Pid(unlucky);
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmPin, w.Take());
  }
  {
    ByteWriter w;
    w.U16(2);
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmEvacuate, w.Take());
  }
  cluster.RunFor(200'000);  // past the crash

  std::printf("\nafter the crash:\n");
  int escaped = 0;
  for (const ProcessId& pid : crew) {
    const MachineId at = cluster.HostOf(pid);
    const bool safe = at != kNoMachine && at != 2;
    escaped += safe ? 1 : 0;
    std::printf("  %s -> %s\n", pid.ToString().c_str(),
                safe ? ("m" + std::to_string(at)).c_str() : "lost with the ship");
  }
  std::printf("%d of %zu escaped by migration\n", escaped, crew.size());

  std::printf("\nrecovering %s from its stable-storage checkpoint onto m1...\n",
              unlucky.ToString().c_str());
  Status recovered = stable_store.RecoverProcess(cluster, unlucky, 1);
  std::printf("  %s\n", recovered.ToString().c_str());
  cluster.RunFor(20'000);

  // Everyone answers a roll call.
  for (const ProcessId& pid : crew) {
    const MachineId at = cluster.HostOf(pid);
    cluster.kernel(0).SendFromKernel(ProcessAddress{at, pid}, kIncrement, {});
  }
  cluster.RunFor(20'000);
  std::printf("\nroll call (each should report 4: 3 before the disaster + 1 now):\n");
  for (const ProcessId& pid : crew) {
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    ByteReader r(record->memory.ReadData(0, 8));
    std::printf("  %s on m%u: count %llu\n", pid.ToString().c_str(), cluster.HostOf(pid),
                static_cast<unsigned long long>(r.U64()));
  }
  return 0;
}

}  // namespace
}  // namespace demos

int main() { return demos::Main(); }
