// Dynamic load balancing (Sec. 1 motivation): a skewed batch of CPU-bound
// jobs lands on one machine of a 3-machine cluster; the process manager's
// threshold policy notices via load reports and spreads them out, improving
// the batch's completion time over static placement.
//
//   ./build/examples/load_balancer

#include <cstdio>

#include "src/kernel/cluster.h"
#include "src/kernel/context_impl.h"
#include "src/sys/bootstrap.h"
#include "src/sys/process_manager.h"
#include "src/workload/programs.h"

namespace demos {
namespace {

struct RunStats {
  SimTime makespan_us = 0;
  std::int64_t migrations = 0;
  std::vector<MachineId> final_homes;
};

RunStats RunBatch(const std::string& policy) {
  Cluster cluster(ClusterConfig{.machines = 3});
  BootOptions options;
  options.policy = policy;
  options.policy_interval_us = 40'000;
  options.load_report_interval_us = 20'000;
  options.start_file_system = false;
  SystemLayout layout = BootSystem(cluster, options);

  // Six jobs, all dumped on machine 0 ("a new process with unexpected
  // resource requirements" disturbing the mix, Sec. 1).
  auto sink = cluster.kernel(0).SpawnProcess("sink");
  cluster.RunFor(1000);
  for (int i = 0; i < 6; ++i) {
    ByteWriter w;
    w.U64(static_cast<std::uint64_t>(i));
    w.Str("cpu_bound");
    w.U16(0);
    w.U32(4096);
    w.U32(1024);
    w.U32(512);
    Link reply;
    reply.address = *sink;
    reply.flags = kLinkReply;
    cluster.kernel(0).SendFromKernel(layout.process_manager, kPmCreate, w.Take(), {reply});
  }
  std::vector<ProcessId> jobs;
  while (jobs.size() < 6) {
    cluster.RunFor(2'000);
    jobs.clear();
    for (MachineId m = 0; m < 3; ++m) {
      for (const auto& [pid, entry] : cluster.kernel(m).process_table().entries()) {
        if (!entry.IsForwarding() && entry.process->memory.ProgramName() == "cpu_bound") {
          jobs.push_back(pid);
        }
      }
    }
  }

  const SimTime start = cluster.queue().Now();
  for (const ProcessId& pid : jobs) {
    CpuBoundConfig config;
    config.quantum_us = 2000;
    config.period_us = 2100;
    config.total_us = 400'000;  // 0.4 virtual seconds of CPU each
    ProcessRecord* record = cluster.FindProcessAnywhere(pid);
    (void)record->memory.WriteData(0, config.Encode());
    KernelContext ctx(&cluster.kernel(cluster.HostOf(pid)), record);
    ctx.SetTimer(1, 0x71CC);
  }

  for (int guard = 0; guard < 20'000; ++guard) {
    bool all_done = true;
    for (const ProcessId& pid : jobs) {
      ProcessRecord* record = cluster.FindProcessAnywhere(pid);
      ByteReader r(record->memory.ReadData(40, 8));
      all_done = all_done && r.U64() == 1;
    }
    if (all_done) {
      break;
    }
    cluster.RunFor(10'000);
  }

  RunStats stats;
  stats.makespan_us = cluster.queue().Now() - start;
  stats.migrations = cluster.TotalStat(stat::kMigrations);
  for (const ProcessId& pid : jobs) {
    stats.final_homes.push_back(cluster.HostOf(pid));
  }
  return stats;
}

int Main() {
  RegisterSystemPrograms();
  RegisterWorkloadPrograms();

  std::printf("six CPU-bound jobs (0.4 s CPU each) all start on machine 0 of 3\n\n");
  for (const char* policy : {"null", "threshold"}) {
    RunStats stats = RunBatch(policy);
    std::printf("policy=%-9s makespan %7llu us, %lld migrations, final placement:",
                policy, static_cast<unsigned long long>(stats.makespan_us),
                static_cast<long long>(stats.migrations));
    for (MachineId m : stats.final_homes) {
      std::printf(" m%u", m);
    }
    std::printf("\n");
  }
  std::printf("\nthe threshold balancer pays a few migrations to cut the makespan by\n"
              "roughly the machine count -- the paper's Sec. 1 argument in action.\n");
  return 0;
}

}  // namespace
}  // namespace demos

int main() { return demos::Main(); }
