// A Figure 3-1-style narration of migration, driven by the src/obs tracer:
// two migrations (m0 -> m1 -> m2) are recorded as full span trees, a stale
// message chases the process across both forwarding addresses, and the whole
// timeline is exported as Chrome trace_event JSON.
//
//   ./build/examples/migration_timeline [trace-output.json]
//
// Open the output in chrome://tracing or https://ui.perfetto.dev: each
// migration renders as a root bar with the 8 protocol phases of Sec. 3.1
// nested beneath it.  Exits nonzero if the trace is missing any phase or the
// forwarded message did not record at least two hops.

#include <cstdio>
#include <iostream>

#include "src/kernel/cluster.h"
#include "src/kernel/message.h"
#include "src/obs/trace_export.h"
#include "src/workload/programs.h"

namespace demos {
namespace {

// Ask `source` to migrate `pid` to `destination` on behalf of `requester` --
// the same kMigrateRequest a process-manager kernel would send (Sec. 3.1
// step 1).  Issuing it from a third machine gives the request phase a real
// network flight, so its span has nonzero virtual duration.
void RequestMigrationRemotely(Kernel& requester, MachineId source, const ProcessId& pid,
                              MachineId destination) {
  ByteWriter w;
  w.U16(destination);
  w.Address(requester.kernel_address());
  Message msg;
  msg.sender = requester.kernel_address();
  msg.receiver = ProcessAddress{source, pid};
  msg.flags = kLinkDeliverToKernel;
  msg.type = MsgType::kMigrateRequest;
  msg.payload = w.Take();
  requester.Transmit(std::move(msg));
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "migration_timeline.trace.json";
  RegisterWorkloadPrograms();

  ClusterConfig config;
  config.machines = 3;
  config.EnableTracing();
  Cluster cluster(config);

  auto counter = cluster.kernel(0).SpawnProcess("counter", 4096, 2048, 1024);
  if (!counter.ok()) {
    return 1;
  }
  cluster.RunUntilIdle();
  std::printf("process %s (7 KiB image) lives on m0\n", counter->pid.ToString().c_str());

  // Freeze it so messages pile up, then migrate with a non-empty queue --
  // exercising step 6's pending-message forwarding in the trace.
  cluster.kernel(1).SendFromKernel(*counter, MsgType::kSuspendProcess, {}, {},
                                   kLinkDeliverToKernel);
  cluster.RunUntilIdle();
  for (int i = 0; i < 3; ++i) {
    cluster.kernel(1).SendFromKernel(*counter, static_cast<MsgType>(1003), {});
  }
  cluster.RunUntilIdle();

  std::printf("\n--- migration 1: m2 requests m0 -> m1 (the 8 steps of Sec. 3.1) ---\n");
  RequestMigrationRemotely(cluster.kernel(2), 0, counter->pid, 1);
  cluster.RunUntilIdle();

  cluster.kernel(1).SendFromKernel(ProcessAddress{1, counter->pid}, MsgType::kResumeProcess, {},
                                   {}, kLinkDeliverToKernel);
  cluster.RunUntilIdle();

  std::printf("--- migration 2: m0 requests m1 -> m2 ---\n");
  RequestMigrationRemotely(cluster.kernel(0), 1, counter->pid, 2);
  cluster.RunUntilIdle();

  // A message addressed to the original home now chases the process through
  // both forwarding addresses: m0 -> m1 -> m2.
  std::printf("--- stale-addressed message chases the process through two hops ---\n\n");
  cluster.kernel(0).SendFromKernel(ProcessAddress{0, counter->pid},
                                   static_cast<MsgType>(1003), {});
  cluster.RunUntilIdle();

  ProcessRecord* moved = cluster.kernel(2).FindProcess(counter->pid);
  if (moved == nullptr) {
    std::fprintf(stderr, "process did not arrive on m2\n");
    return 1;
  }
  ByteReader r(moved->memory.ReadData(0, 8));
  std::printf("process finished on m%u in state %s with %llu increments applied\n\n", 2,
              ExecStateName(moved->state), static_cast<unsigned long long>(r.U64()));

  const Tracer total = cluster.TotalTrace();
  WriteTraceSummary(total.events(), std::cout);

  StatsRegistry derived;
  BuildTraceStats(total.events(), &derived);
  std::printf("\nderived histograms:\n");
  derived.Dump(std::cout);

  if (!WriteChromeTraceFile(total.events(), out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("\nwrote %zu trace events to %s (open in chrome://tracing)\n",
              total.events().size(), out_path);

  // Self-check: the first migration must show all 8 phases with nonzero
  // virtual duration, and the stale message must have transited >= 2 hops.
  const auto spans = BuildMigrationSpans(total.events());
  if (spans.empty()) {
    std::fprintf(stderr, "no migration spans reconstructed\n");
    return 1;
  }
  for (const MigrationPhaseSpan& phase : spans[0].phases) {
    if (!phase.valid || phase.duration() == 0) {
      std::fprintf(stderr, "phase %s missing or zero-length\n", MigrationPhaseName(phase.kind));
      return 1;
    }
  }
  std::uint32_t max_hops = 0;
  for (const MessageTrace& msg : BuildMessageTraces(total.events())) {
    max_hops = std::max(max_hops, msg.hops);
  }
  if (max_hops < 2) {
    std::fprintf(stderr, "expected a message with >= 2 forwarding hops, saw %u\n", max_hops);
    return 1;
  }
  std::printf("all 8 phases traced with nonzero duration; max forwarding hops: %u\n", max_hops);
  return 0;
}

}  // namespace
}  // namespace demos

int main(int argc, char** argv) { return demos::Main(argc, argv); }
