// A Figure 3-1-style narration of one migration: every kernel-protocol
// message is printed with its virtual timestamp, direction, and size, by
// tapping the transport between the two kernels.
//
//   ./build/examples/migration_timeline

#include <cstdio>
#include <memory>

#include "src/kernel/cluster.h"
#include "src/kernel/message.h"
#include "src/net/sim_network.h"
#include "src/sim/event_queue.h"
#include "src/workload/programs.h"

namespace demos {
namespace {

// A transport shim that prints every kernel message it carries.
class TracingTransport final : public Transport {
 public:
  TracingTransport(Transport* lower, EventQueue* queue) : lower_(*lower), queue_(*queue) {}

  void Attach(MachineId node, DeliveryHandler handler) override {
    lower_.Attach(node, std::move(handler));
  }

  void Send(MachineId src, MachineId dst, Bytes payload) override {
    bool ok = false;
    Message msg = Message::Deserialize(payload, &ok);
    if (ok && src != dst) {
      const bool admin = IsMigrationAdminType(msg.type);
      std::printf("  t=%6llu us  m%u -> m%u  %-18s %4zu B%s\n",
                  static_cast<unsigned long long>(queue_.Now()), src, dst,
                  MsgTypeName(msg.type), payload.size(), admin ? "  [admin]" : "");
    }
    lower_.Send(src, dst, std::move(payload));
  }

 private:
  Transport& lower_;
  EventQueue& queue_;
};

int Main() {
  RegisterWorkloadPrograms();

  EventQueue queue;
  SimNetwork network(&queue, {});
  TracingTransport tracer(&network, &queue);
  KernelConfig config;
  Kernel k0(0, &queue, &tracer, config);
  Kernel k1(1, &queue, &tracer, config);

  auto counter = k0.SpawnProcess("counter", 4096, 2048, 1024);
  if (!counter.ok()) {
    return 1;
  }
  queue.RunUntilIdle();

  std::printf("process %s (7 KiB image) lives on m0; three messages are queued\n",
              counter->pid.ToString().c_str());
  // Freeze it so messages pile up, then migrate with a non-empty queue --
  // exercising step 6's pending-message forwarding in the trace.
  k1.SendFromKernel(*counter, MsgType::kSuspendProcess, {}, {}, kLinkDeliverToKernel);
  queue.RunUntilIdle();
  for (int i = 0; i < 3; ++i) {
    k1.SendFromKernel(*counter, static_cast<MsgType>(1003), {});
  }
  queue.RunUntilIdle();

  std::printf("\n--- migration m0 -> m1 begins (the 8 steps of Sec. 3.1) ---\n");
  (void)k0.StartMigration(counter->pid, 1, k0.kernel_address());
  queue.RunUntilIdle();
  std::printf("--- migration complete ---\n\n");

  k1.SendFromKernel(ProcessAddress{1, counter->pid}, MsgType::kResumeProcess, {}, {},
                    kLinkDeliverToKernel);
  queue.RunUntilIdle();

  ProcessRecord* moved = k1.FindProcess(counter->pid);
  ByteReader r(moved->memory.ReadData(0, 8));
  std::printf("resumed on m%u in state %s with all %llu queued increments applied\n", 1,
              ExecStateName(moved->state), static_cast<unsigned long long>(r.U64()));
  std::printf("administrative messages: %lld (request/offer/accept/3 pulls/complete/"
              "cleanup/done)\n",
              static_cast<long long>(k0.stats().Get(stat::kAdminMsgs) +
                                     k1.stats().Get(stat::kAdminMsgs)));
  return 0;
}

}  // namespace
}  // namespace demos

int main() { return demos::Main(); }
