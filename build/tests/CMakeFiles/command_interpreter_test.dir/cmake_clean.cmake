file(REMOVE_RECURSE
  "CMakeFiles/command_interpreter_test.dir/command_interpreter_test.cc.o"
  "CMakeFiles/command_interpreter_test.dir/command_interpreter_test.cc.o.d"
  "command_interpreter_test"
  "command_interpreter_test.pdb"
  "command_interpreter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/command_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
