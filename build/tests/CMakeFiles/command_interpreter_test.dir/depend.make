# Empty dependencies file for command_interpreter_test.
# This may be replaced when dependencies are built.
