# Empty compiler generated dependencies file for forwarding_test.
# This may be replaced when dependencies are built.
