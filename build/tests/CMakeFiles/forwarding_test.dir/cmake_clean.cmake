file(REMOVE_RECURSE
  "CMakeFiles/forwarding_test.dir/forwarding_test.cc.o"
  "CMakeFiles/forwarding_test.dir/forwarding_test.cc.o.d"
  "forwarding_test"
  "forwarding_test.pdb"
  "forwarding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
