file(REMOVE_RECURSE
  "CMakeFiles/process_test.dir/process_test.cc.o"
  "CMakeFiles/process_test.dir/process_test.cc.o.d"
  "process_test"
  "process_test.pdb"
  "process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
