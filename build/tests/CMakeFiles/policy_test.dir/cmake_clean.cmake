file(REMOVE_RECURSE
  "CMakeFiles/policy_test.dir/policy_test.cc.o"
  "CMakeFiles/policy_test.dir/policy_test.cc.o.d"
  "policy_test"
  "policy_test.pdb"
  "policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
