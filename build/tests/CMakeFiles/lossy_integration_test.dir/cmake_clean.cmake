file(REMOVE_RECURSE
  "CMakeFiles/lossy_integration_test.dir/lossy_integration_test.cc.o"
  "CMakeFiles/lossy_integration_test.dir/lossy_integration_test.cc.o.d"
  "lossy_integration_test"
  "lossy_integration_test.pdb"
  "lossy_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
