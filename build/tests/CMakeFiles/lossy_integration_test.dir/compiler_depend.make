# Empty compiler generated dependencies file for lossy_integration_test.
# This may be replaced when dependencies are built.
