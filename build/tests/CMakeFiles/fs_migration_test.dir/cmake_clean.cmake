file(REMOVE_RECURSE
  "CMakeFiles/fs_migration_test.dir/fs_migration_test.cc.o"
  "CMakeFiles/fs_migration_test.dir/fs_migration_test.cc.o.d"
  "fs_migration_test"
  "fs_migration_test.pdb"
  "fs_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
