# Empty compiler generated dependencies file for fs_migration_test.
# This may be replaced when dependencies are built.
