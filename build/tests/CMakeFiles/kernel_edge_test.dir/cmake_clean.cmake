file(REMOVE_RECURSE
  "CMakeFiles/kernel_edge_test.dir/kernel_edge_test.cc.o"
  "CMakeFiles/kernel_edge_test.dir/kernel_edge_test.cc.o.d"
  "kernel_edge_test"
  "kernel_edge_test.pdb"
  "kernel_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
