file(REMOVE_RECURSE
  "CMakeFiles/fs_units_test.dir/fs_units_test.cc.o"
  "CMakeFiles/fs_units_test.dir/fs_units_test.cc.o.d"
  "fs_units_test"
  "fs_units_test.pdb"
  "fs_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
