file(REMOVE_RECURSE
  "CMakeFiles/udp_transport_test.dir/udp_transport_test.cc.o"
  "CMakeFiles/udp_transport_test.dir/udp_transport_test.cc.o.d"
  "udp_transport_test"
  "udp_transport_test.pdb"
  "udp_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
