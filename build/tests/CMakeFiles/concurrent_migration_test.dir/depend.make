# Empty dependencies file for concurrent_migration_test.
# This may be replaced when dependencies are built.
