file(REMOVE_RECURSE
  "CMakeFiles/concurrent_migration_test.dir/concurrent_migration_test.cc.o"
  "CMakeFiles/concurrent_migration_test.dir/concurrent_migration_test.cc.o.d"
  "concurrent_migration_test"
  "concurrent_migration_test.pdb"
  "concurrent_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
