file(REMOVE_RECURSE
  "CMakeFiles/switchboard_test.dir/switchboard_test.cc.o"
  "CMakeFiles/switchboard_test.dir/switchboard_test.cc.o.d"
  "switchboard_test"
  "switchboard_test.pdb"
  "switchboard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchboard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
