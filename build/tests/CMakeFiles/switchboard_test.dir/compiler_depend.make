# Empty compiler generated dependencies file for switchboard_test.
# This may be replaced when dependencies are built.
