file(REMOVE_RECURSE
  "CMakeFiles/data_mover_test.dir/data_mover_test.cc.o"
  "CMakeFiles/data_mover_test.dir/data_mover_test.cc.o.d"
  "data_mover_test"
  "data_mover_test.pdb"
  "data_mover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_mover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
