# Empty compiler generated dependencies file for data_mover_test.
# This may be replaced when dependencies are built.
