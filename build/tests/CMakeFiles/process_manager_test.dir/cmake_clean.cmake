file(REMOVE_RECURSE
  "CMakeFiles/process_manager_test.dir/process_manager_test.cc.o"
  "CMakeFiles/process_manager_test.dir/process_manager_test.cc.o.d"
  "process_manager_test"
  "process_manager_test.pdb"
  "process_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
