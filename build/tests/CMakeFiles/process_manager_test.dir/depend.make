# Empty dependencies file for process_manager_test.
# This may be replaced when dependencies are built.
