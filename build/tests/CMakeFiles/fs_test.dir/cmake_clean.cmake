file(REMOVE_RECURSE
  "CMakeFiles/fs_test.dir/fs_test.cc.o"
  "CMakeFiles/fs_test.dir/fs_test.cc.o.d"
  "fs_test"
  "fs_test.pdb"
  "fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
