# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/process_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/data_mover_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/switchboard_test[1]_include.cmake")
include("/root/repo/build/tests/process_manager_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_migration_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/command_interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/lossy_integration_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/fs_units_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_edge_test[1]_include.cmake")
include("/root/repo/build/tests/udp_transport_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_migration_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
