# Empty dependencies file for bench_delivery_modes.
# This may be replaced when dependencies are built.
