file(REMOVE_RECURSE
  "CMakeFiles/bench_delivery_modes.dir/bench_delivery_modes.cc.o"
  "CMakeFiles/bench_delivery_modes.dir/bench_delivery_modes.cc.o.d"
  "bench_delivery_modes"
  "bench_delivery_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delivery_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
