file(REMOVE_RECURSE
  "CMakeFiles/bench_server_migration.dir/bench_server_migration.cc.o"
  "CMakeFiles/bench_server_migration.dir/bench_server_migration.cc.o.d"
  "bench_server_migration"
  "bench_server_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
