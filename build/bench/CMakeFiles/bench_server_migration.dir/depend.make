# Empty dependencies file for bench_server_migration.
# This may be replaced when dependencies are built.
