# Empty compiler generated dependencies file for bench_pending_queue.
# This may be replaced when dependencies are built.
