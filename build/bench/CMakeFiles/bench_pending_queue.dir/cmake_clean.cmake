file(REMOVE_RECURSE
  "CMakeFiles/bench_pending_queue.dir/bench_pending_queue.cc.o"
  "CMakeFiles/bench_pending_queue.dir/bench_pending_queue.cc.o.d"
  "bench_pending_queue"
  "bench_pending_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pending_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
