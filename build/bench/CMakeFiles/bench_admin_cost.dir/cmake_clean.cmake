file(REMOVE_RECURSE
  "CMakeFiles/bench_admin_cost.dir/bench_admin_cost.cc.o"
  "CMakeFiles/bench_admin_cost.dir/bench_admin_cost.cc.o.d"
  "bench_admin_cost"
  "bench_admin_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_admin_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
