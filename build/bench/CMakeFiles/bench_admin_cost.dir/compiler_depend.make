# Empty compiler generated dependencies file for bench_admin_cost.
# This may be replaced when dependencies are built.
