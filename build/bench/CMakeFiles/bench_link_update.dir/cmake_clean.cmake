file(REMOVE_RECURSE
  "CMakeFiles/bench_link_update.dir/bench_link_update.cc.o"
  "CMakeFiles/bench_link_update.dir/bench_link_update.cc.o.d"
  "bench_link_update"
  "bench_link_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
