# Empty dependencies file for bench_link_update.
# This may be replaced when dependencies are built.
