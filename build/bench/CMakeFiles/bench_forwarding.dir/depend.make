# Empty dependencies file for bench_forwarding.
# This may be replaced when dependencies are built.
