file(REMOVE_RECURSE
  "CMakeFiles/bench_forwarding.dir/bench_forwarding.cc.o"
  "CMakeFiles/bench_forwarding.dir/bench_forwarding.cc.o.d"
  "bench_forwarding"
  "bench_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
