# Empty dependencies file for bench_perturbation.
# This may be replaced when dependencies are built.
