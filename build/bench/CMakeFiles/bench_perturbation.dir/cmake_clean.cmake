file(REMOVE_RECURSE
  "CMakeFiles/bench_perturbation.dir/bench_perturbation.cc.o"
  "CMakeFiles/bench_perturbation.dir/bench_perturbation.cc.o.d"
  "bench_perturbation"
  "bench_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
