# Empty dependencies file for bench_gc.
# This may be replaced when dependencies are built.
