file(REMOVE_RECURSE
  "CMakeFiles/bench_gc.dir/bench_gc.cc.o"
  "CMakeFiles/bench_gc.dir/bench_gc.cc.o.d"
  "bench_gc"
  "bench_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
