file(REMOVE_RECURSE
  "CMakeFiles/bench_transfer_cost.dir/bench_transfer_cost.cc.o"
  "CMakeFiles/bench_transfer_cost.dir/bench_transfer_cost.cc.o.d"
  "bench_transfer_cost"
  "bench_transfer_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfer_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
