# Empty dependencies file for bench_transfer_cost.
# This may be replaced when dependencies are built.
