file(REMOVE_RECURSE
  "CMakeFiles/bench_fs_migration.dir/bench_fs_migration.cc.o"
  "CMakeFiles/bench_fs_migration.dir/bench_fs_migration.cc.o.d"
  "bench_fs_migration"
  "bench_fs_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fs_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
