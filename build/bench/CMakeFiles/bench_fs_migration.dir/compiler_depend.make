# Empty compiler generated dependencies file for bench_fs_migration.
# This may be replaced when dependencies are built.
