# Empty compiler generated dependencies file for bench_state_size.
# This may be replaced when dependencies are built.
