file(REMOVE_RECURSE
  "CMakeFiles/bench_state_size.dir/bench_state_size.cc.o"
  "CMakeFiles/bench_state_size.dir/bench_state_size.cc.o.d"
  "bench_state_size"
  "bench_state_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
