# Empty dependencies file for demos_workload.
# This may be replaced when dependencies are built.
