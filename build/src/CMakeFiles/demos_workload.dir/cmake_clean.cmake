file(REMOVE_RECURSE
  "CMakeFiles/demos_workload.dir/workload/programs.cc.o"
  "CMakeFiles/demos_workload.dir/workload/programs.cc.o.d"
  "libdemos_workload.a"
  "libdemos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
