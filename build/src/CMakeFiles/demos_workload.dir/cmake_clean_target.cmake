file(REMOVE_RECURSE
  "libdemos_workload.a"
)
