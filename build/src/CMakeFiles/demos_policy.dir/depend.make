# Empty dependencies file for demos_policy.
# This may be replaced when dependencies are built.
