
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/affinity_policy.cc" "src/CMakeFiles/demos_policy.dir/policy/affinity_policy.cc.o" "gcc" "src/CMakeFiles/demos_policy.dir/policy/affinity_policy.cc.o.d"
  "/root/repo/src/policy/metrics.cc" "src/CMakeFiles/demos_policy.dir/policy/metrics.cc.o" "gcc" "src/CMakeFiles/demos_policy.dir/policy/metrics.cc.o.d"
  "/root/repo/src/policy/threshold_balancer.cc" "src/CMakeFiles/demos_policy.dir/policy/threshold_balancer.cc.o" "gcc" "src/CMakeFiles/demos_policy.dir/policy/threshold_balancer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/demos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/demos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
