file(REMOVE_RECURSE
  "libdemos_policy.a"
)
