file(REMOVE_RECURSE
  "CMakeFiles/demos_policy.dir/policy/affinity_policy.cc.o"
  "CMakeFiles/demos_policy.dir/policy/affinity_policy.cc.o.d"
  "CMakeFiles/demos_policy.dir/policy/metrics.cc.o"
  "CMakeFiles/demos_policy.dir/policy/metrics.cc.o.d"
  "CMakeFiles/demos_policy.dir/policy/threshold_balancer.cc.o"
  "CMakeFiles/demos_policy.dir/policy/threshold_balancer.cc.o.d"
  "libdemos_policy.a"
  "libdemos_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demos_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
