file(REMOVE_RECURSE
  "CMakeFiles/demos_kernel.dir/kernel/context.cc.o"
  "CMakeFiles/demos_kernel.dir/kernel/context.cc.o.d"
  "CMakeFiles/demos_kernel.dir/kernel/kernel.cc.o"
  "CMakeFiles/demos_kernel.dir/kernel/kernel.cc.o.d"
  "CMakeFiles/demos_kernel.dir/kernel/message.cc.o"
  "CMakeFiles/demos_kernel.dir/kernel/message.cc.o.d"
  "CMakeFiles/demos_kernel.dir/kernel/migration.cc.o"
  "CMakeFiles/demos_kernel.dir/kernel/migration.cc.o.d"
  "CMakeFiles/demos_kernel.dir/kernel/process.cc.o"
  "CMakeFiles/demos_kernel.dir/kernel/process.cc.o.d"
  "libdemos_kernel.a"
  "libdemos_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demos_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
