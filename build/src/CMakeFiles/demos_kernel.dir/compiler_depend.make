# Empty compiler generated dependencies file for demos_kernel.
# This may be replaced when dependencies are built.
