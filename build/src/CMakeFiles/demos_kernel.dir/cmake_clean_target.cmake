file(REMOVE_RECURSE
  "libdemos_kernel.a"
)
