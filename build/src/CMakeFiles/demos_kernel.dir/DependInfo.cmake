
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/context.cc" "src/CMakeFiles/demos_kernel.dir/kernel/context.cc.o" "gcc" "src/CMakeFiles/demos_kernel.dir/kernel/context.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/demos_kernel.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/demos_kernel.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/message.cc" "src/CMakeFiles/demos_kernel.dir/kernel/message.cc.o" "gcc" "src/CMakeFiles/demos_kernel.dir/kernel/message.cc.o.d"
  "/root/repo/src/kernel/migration.cc" "src/CMakeFiles/demos_kernel.dir/kernel/migration.cc.o" "gcc" "src/CMakeFiles/demos_kernel.dir/kernel/migration.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/CMakeFiles/demos_kernel.dir/kernel/process.cc.o" "gcc" "src/CMakeFiles/demos_kernel.dir/kernel/process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/demos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
