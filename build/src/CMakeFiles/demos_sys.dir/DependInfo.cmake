
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sys/bootstrap.cc" "src/CMakeFiles/demos_sys.dir/sys/bootstrap.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/bootstrap.cc.o.d"
  "/root/repo/src/sys/command_interpreter.cc" "src/CMakeFiles/demos_sys.dir/sys/command_interpreter.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/command_interpreter.cc.o.d"
  "/root/repo/src/sys/fs/buffer_manager.cc" "src/CMakeFiles/demos_sys.dir/sys/fs/buffer_manager.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/fs/buffer_manager.cc.o.d"
  "/root/repo/src/sys/fs/directory_service.cc" "src/CMakeFiles/demos_sys.dir/sys/fs/directory_service.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/fs/directory_service.cc.o.d"
  "/root/repo/src/sys/fs/disk_driver.cc" "src/CMakeFiles/demos_sys.dir/sys/fs/disk_driver.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/fs/disk_driver.cc.o.d"
  "/root/repo/src/sys/fs/fs_client.cc" "src/CMakeFiles/demos_sys.dir/sys/fs/fs_client.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/fs/fs_client.cc.o.d"
  "/root/repo/src/sys/fs/request_interpreter.cc" "src/CMakeFiles/demos_sys.dir/sys/fs/request_interpreter.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/fs/request_interpreter.cc.o.d"
  "/root/repo/src/sys/memory_scheduler.cc" "src/CMakeFiles/demos_sys.dir/sys/memory_scheduler.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/memory_scheduler.cc.o.d"
  "/root/repo/src/sys/process_manager.cc" "src/CMakeFiles/demos_sys.dir/sys/process_manager.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/process_manager.cc.o.d"
  "/root/repo/src/sys/switchboard.cc" "src/CMakeFiles/demos_sys.dir/sys/switchboard.cc.o" "gcc" "src/CMakeFiles/demos_sys.dir/sys/switchboard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/demos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/demos_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/demos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
