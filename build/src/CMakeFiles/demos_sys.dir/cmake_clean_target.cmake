file(REMOVE_RECURSE
  "libdemos_sys.a"
)
