file(REMOVE_RECURSE
  "CMakeFiles/demos_sys.dir/sys/bootstrap.cc.o"
  "CMakeFiles/demos_sys.dir/sys/bootstrap.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/command_interpreter.cc.o"
  "CMakeFiles/demos_sys.dir/sys/command_interpreter.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/fs/buffer_manager.cc.o"
  "CMakeFiles/demos_sys.dir/sys/fs/buffer_manager.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/fs/directory_service.cc.o"
  "CMakeFiles/demos_sys.dir/sys/fs/directory_service.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/fs/disk_driver.cc.o"
  "CMakeFiles/demos_sys.dir/sys/fs/disk_driver.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/fs/fs_client.cc.o"
  "CMakeFiles/demos_sys.dir/sys/fs/fs_client.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/fs/request_interpreter.cc.o"
  "CMakeFiles/demos_sys.dir/sys/fs/request_interpreter.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/memory_scheduler.cc.o"
  "CMakeFiles/demos_sys.dir/sys/memory_scheduler.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/process_manager.cc.o"
  "CMakeFiles/demos_sys.dir/sys/process_manager.cc.o.d"
  "CMakeFiles/demos_sys.dir/sys/switchboard.cc.o"
  "CMakeFiles/demos_sys.dir/sys/switchboard.cc.o.d"
  "libdemos_sys.a"
  "libdemos_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demos_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
