# Empty compiler generated dependencies file for demos_sys.
# This may be replaced when dependencies are built.
