
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/crash.cc" "src/CMakeFiles/demos_fault.dir/fault/crash.cc.o" "gcc" "src/CMakeFiles/demos_fault.dir/fault/crash.cc.o.d"
  "/root/repo/src/fault/recovery.cc" "src/CMakeFiles/demos_fault.dir/fault/recovery.cc.o" "gcc" "src/CMakeFiles/demos_fault.dir/fault/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/demos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/demos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
