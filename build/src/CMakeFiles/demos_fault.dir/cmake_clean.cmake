file(REMOVE_RECURSE
  "CMakeFiles/demos_fault.dir/fault/crash.cc.o"
  "CMakeFiles/demos_fault.dir/fault/crash.cc.o.d"
  "CMakeFiles/demos_fault.dir/fault/recovery.cc.o"
  "CMakeFiles/demos_fault.dir/fault/recovery.cc.o.d"
  "libdemos_fault.a"
  "libdemos_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demos_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
