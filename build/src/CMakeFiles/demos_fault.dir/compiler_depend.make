# Empty compiler generated dependencies file for demos_fault.
# This may be replaced when dependencies are built.
