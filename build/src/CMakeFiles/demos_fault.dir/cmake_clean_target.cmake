file(REMOVE_RECURSE
  "libdemos_fault.a"
)
