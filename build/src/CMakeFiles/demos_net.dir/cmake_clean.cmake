file(REMOVE_RECURSE
  "CMakeFiles/demos_net.dir/net/reliable_channel.cc.o"
  "CMakeFiles/demos_net.dir/net/reliable_channel.cc.o.d"
  "CMakeFiles/demos_net.dir/net/sim_network.cc.o"
  "CMakeFiles/demos_net.dir/net/sim_network.cc.o.d"
  "CMakeFiles/demos_net.dir/net/udp_transport.cc.o"
  "CMakeFiles/demos_net.dir/net/udp_transport.cc.o.d"
  "libdemos_net.a"
  "libdemos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
