# Empty dependencies file for demos_net.
# This may be replaced when dependencies are built.
