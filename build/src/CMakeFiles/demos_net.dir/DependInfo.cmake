
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/reliable_channel.cc" "src/CMakeFiles/demos_net.dir/net/reliable_channel.cc.o" "gcc" "src/CMakeFiles/demos_net.dir/net/reliable_channel.cc.o.d"
  "/root/repo/src/net/sim_network.cc" "src/CMakeFiles/demos_net.dir/net/sim_network.cc.o" "gcc" "src/CMakeFiles/demos_net.dir/net/sim_network.cc.o.d"
  "/root/repo/src/net/udp_transport.cc" "src/CMakeFiles/demos_net.dir/net/udp_transport.cc.o" "gcc" "src/CMakeFiles/demos_net.dir/net/udp_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
