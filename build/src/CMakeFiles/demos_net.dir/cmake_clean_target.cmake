file(REMOVE_RECURSE
  "libdemos_net.a"
)
