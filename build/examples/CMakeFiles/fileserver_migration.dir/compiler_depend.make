# Empty compiler generated dependencies file for fileserver_migration.
# This may be replaced when dependencies are built.
