file(REMOVE_RECURSE
  "CMakeFiles/fileserver_migration.dir/fileserver_migration.cpp.o"
  "CMakeFiles/fileserver_migration.dir/fileserver_migration.cpp.o.d"
  "fileserver_migration"
  "fileserver_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fileserver_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
