file(REMOVE_RECURSE
  "CMakeFiles/command_session.dir/command_session.cpp.o"
  "CMakeFiles/command_session.dir/command_session.cpp.o.d"
  "command_session"
  "command_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/command_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
