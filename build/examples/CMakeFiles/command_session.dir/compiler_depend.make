# Empty compiler generated dependencies file for command_session.
# This may be replaced when dependencies are built.
