file(REMOVE_RECURSE
  "CMakeFiles/realtime_sockets.dir/realtime_sockets.cpp.o"
  "CMakeFiles/realtime_sockets.dir/realtime_sockets.cpp.o.d"
  "realtime_sockets"
  "realtime_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
