# Empty dependencies file for realtime_sockets.
# This may be replaced when dependencies are built.
