file(REMOVE_RECURSE
  "CMakeFiles/sinking_ship.dir/sinking_ship.cpp.o"
  "CMakeFiles/sinking_ship.dir/sinking_ship.cpp.o.d"
  "sinking_ship"
  "sinking_ship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinking_ship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
