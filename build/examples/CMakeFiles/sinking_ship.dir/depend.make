# Empty dependencies file for sinking_ship.
# This may be replaced when dependencies are built.
