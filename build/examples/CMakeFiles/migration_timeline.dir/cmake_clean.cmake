file(REMOVE_RECURSE
  "CMakeFiles/migration_timeline.dir/migration_timeline.cpp.o"
  "CMakeFiles/migration_timeline.dir/migration_timeline.cpp.o.d"
  "migration_timeline"
  "migration_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
