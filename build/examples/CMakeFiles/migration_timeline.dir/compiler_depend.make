# Empty compiler generated dependencies file for migration_timeline.
# This may be replaced when dependencies are built.
