// chaos_fuzz: seed-driven chaos fuzzer for the DEMOS/MP cluster.
//
// Each 64-bit seed deterministically derives a scenario (topology, network
// pathology, workload mix, migration/crash schedule), runs it to quiescence
// under the cluster invariant checker, and reports every violated invariant.
//
//   chaos_fuzz --seeds=200             sweep seeds 1..200
//   chaos_fuzz --seeds=200 --start=1000  sweep 1000..1199
//   chaos_fuzz --seed=42               replay one scenario, verbose
//   chaos_fuzz --seed=42 --minimize    greedily shrink the failing scenario
//   chaos_fuzz --seed=42 --trace-out=t.json   write the trimmed Chrome trace
//   chaos_fuzz --artifacts-dir=out     failing seeds + traces for CI upload
//   chaos_fuzz --disable=crashes,drop  mask feature axes (replay aid)
//   chaos_fuzz --seeds=50 --permadeath permanent machine-death scenarios
//                                      (migration watchdogs armed, I8 audit)
//   chaos_fuzz --seeds=50 --churn      migration storms + kill/restart
//                                      cycles (forwarding GC, chain collapse,
//                                      gossip under churn); composes with
//                                      --permadeath
//   chaos_fuzz --seeds=50 --engine=parallel  run scenarios on the parallel
//                                      engine (one thread per kernel, under
//                                      conservative virtual-time sync)
//
// Exit status: 0 if every seed passed, 1 otherwise.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/check/chaos.h"
#include "src/obs/trace_export.h"

namespace {

struct Options {
  bool have_seed = false;
  std::uint64_t seed = 0;
  std::uint64_t seeds = 0;  // sweep count (0 = single seed mode)
  std::uint64_t start = 1;
  bool minimize = false;
  bool verbose = false;
  bool permadeath = false;
  bool churn = false;
  demos::ChaosEngineKind engine = demos::ChaosEngineKind::kSequential;
  std::string trace_out;
  std::string artifacts_dir;
  std::vector<demos::ChaosFeature> disabled;
};

bool ParseU64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--seed=")) {
      if (!ParseU64(v, &opts->seed)) {
        return false;
      }
      opts->have_seed = true;
    } else if (const char* v = value_of("--seeds=")) {
      if (!ParseU64(v, &opts->seeds)) {
        return false;
      }
    } else if (const char* v = value_of("--start=")) {
      if (!ParseU64(v, &opts->start)) {
        return false;
      }
    } else if (const char* v = value_of("--trace-out=")) {
      opts->trace_out = v;
    } else if (const char* v = value_of("--artifacts-dir=")) {
      opts->artifacts_dir = v;
    } else if (const char* v = value_of("--disable=")) {
      std::string list = v;
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!name.empty()) {
          const demos::ChaosFeature f = demos::ChaosFeatureFromName(name);
          if (f == demos::ChaosFeature::kNone) {
            std::fprintf(stderr, "unknown feature '%s'\n", name.c_str());
            return false;
          }
          opts->disabled.push_back(f);
        }
        if (comma == std::string::npos) {
          break;
        }
        pos = comma + 1;
      }
    } else if (const char* v = value_of("--engine=")) {
      const std::string name = v;
      if (name == "sequential") {
        opts->engine = demos::ChaosEngineKind::kSequential;
      } else if (name == "parallel") {
        opts->engine = demos::ChaosEngineKind::kParallel;
      } else {
        std::fprintf(stderr, "unknown engine '%s' (sequential|parallel)\n", name.c_str());
        return false;
      }
    } else if (arg == "--permadeath") {
      opts->permadeath = true;
    } else if (arg == "--churn") {
      opts->churn = true;
    } else if (arg == "--minimize") {
      opts->minimize = true;
    } else if (arg == "--verbose" || arg == "-v") {
      opts->verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return opts->have_seed || opts->seeds > 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: chaos_fuzz (--seed=N | --seeds=K [--start=S])\n"
               "                  [--engine=sequential|parallel]\n"
               "                  [--permadeath] [--churn] [--minimize] [--verbose]\n"
               "                  [--trace-out=PATH] [--artifacts-dir=DIR]\n"
               "                  [--disable=f1,f2,...]\n"
               "features: crashes drop dup jitter notes cpu rpc halve-migrations\n"
               "          halve-crashes\n");
}

void PrintFailure(const Options& opts, const demos::ChaosScenario& scenario,
                  const demos::ChaosResult& result) {
  std::printf("FAIL seed=%llu (%zu violation%s)\n",
              static_cast<unsigned long long>(scenario.seed), result.violations.size(),
              result.violations.size() == 1 ? "" : "s");
  std::printf("%s\n", scenario.Describe().c_str());
  constexpr std::size_t kMaxPrinted = 10;
  for (std::size_t i = 0; i < result.violations.size() && i < kMaxPrinted; ++i) {
    std::printf("  %s\n", result.violations[i].ToString().c_str());
  }
  if (result.violations.size() > kMaxPrinted) {
    std::printf("  ... and %zu more\n", result.violations.size() - kMaxPrinted);
  }
  std::printf("repro: chaos_fuzz --seed=%llu%s%s%s\n",
              static_cast<unsigned long long>(scenario.seed),
              opts.churn ? " --churn" : "",
              opts.permadeath ? " --permadeath" : "",
              opts.engine == demos::ChaosEngineKind::kParallel ? " --engine=parallel" : "");
}

// Trim the cluster timeline to the violation's cast of characters and write a
// Chrome trace (chrome://tracing, perfetto.dev).
void WriteTrimmedTrace(const demos::ChaosResult& result, const std::string& path) {
  const std::vector<demos::TraceEvent> trimmed =
      demos::FilterTrace(result.trace, result.suspect_trace_ids, result.suspect_pids);
  const std::vector<demos::TraceEvent>& events = trimmed.empty() ? result.trace : trimmed;
  if (demos::WriteChromeTraceFile(events, path)) {
    std::printf("trace: %s (%zu events)\n", path.c_str(), events.size());
  } else {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
  }
}

// Flight-recorder post-mortem: the merged last-N-events window every kernel
// kept while the scenario ran, as text and as a Chrome trace.
void WriteFlightDumps(const demos::ChaosResult& result, const std::string& stem) {
  if (result.flight.empty()) {
    return;
  }
  const char* reason = result.flight_trigger != nullptr ? result.flight_trigger : "failure";
  if (demos::WriteFlightTextFile(result.flight, reason, stem + ".flightrec.txt")) {
    std::printf("flight recorder: %s.flightrec.txt (%zu records, trigger: %s)\n", stem.c_str(),
                result.flight.size(), reason);
  } else {
    std::fprintf(stderr, "failed to write flight dump to %s.flightrec.txt\n", stem.c_str());
  }
  if (!demos::WriteFlightChromeTraceFile(result.flight, stem + ".flightrec.trace.json")) {
    std::fprintf(stderr, "failed to write flight trace to %s.flightrec.trace.json\n", stem.c_str());
  }
}

void RecordArtifacts(const Options& opts, const demos::ChaosScenario& scenario,
                     const demos::ChaosResult& result) {
  if (opts.artifacts_dir.empty()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(opts.artifacts_dir, ec);
  const std::string dir = opts.artifacts_dir + "/";
  std::ofstream seeds(dir + "failing_seeds.txt", std::ios::app);
  seeds << scenario.seed << "\n";
  const std::string stem = dir + "seed_" + std::to_string(scenario.seed);
  WriteTrimmedTrace(result, stem + ".trace.json");
  WriteFlightDumps(result, stem);
}

// Runs one seed; returns true iff it passed.
bool RunSeed(const Options& opts, std::uint64_t seed) {
  demos::ChaosScenario scenario =
      opts.churn        ? demos::ChurnScenarioFromSeed(seed, opts.permadeath)
      : opts.permadeath ? demos::PermanentDeathScenarioFromSeed(seed)
                        : demos::ScenarioFromSeed(seed);
  for (const demos::ChaosFeature f : opts.disabled) {
    (void)demos::DisableFeature(&scenario, f);
  }
  demos::ChaosOptions run_opts;
  run_opts.engine = opts.engine;
  run_opts.collect_trace = !opts.trace_out.empty() || !opts.artifacts_dir.empty();
  const demos::ChaosResult result = demos::RunScenario(scenario, run_opts);
  if (result.ok()) {
    if (opts.verbose) {
      std::printf("PASS seed=%llu events=%zu tracked=%llu probe_rounds=%d\n",
                  static_cast<unsigned long long>(seed), result.events_executed,
                  static_cast<unsigned long long>(result.messages_tracked), result.probe_rounds);
    }
    return true;
  }

  PrintFailure(opts, scenario, result);
  if (!opts.trace_out.empty()) {
    WriteTrimmedTrace(result, opts.trace_out);
  }
  RecordArtifacts(opts, scenario, result);

  if (opts.minimize) {
    const demos::MinimizeResult min = demos::MinimizeScenario(scenario, run_opts);
    std::printf("minimized after %d run%s:", min.runs, min.runs == 1 ? "" : "s");
    if (min.disabled.empty() && min.halvings == 0 && min.crash_halvings == 0) {
      std::printf(" (irreducible)");
    }
    for (const demos::ChaosFeature f : min.disabled) {
      std::printf(" -%s", demos::ChaosFeatureName(f));
    }
    if (min.halvings > 0) {
      std::printf(" migrations/%d", 1 << min.halvings);
    }
    if (min.crash_halvings > 0) {
      std::printf(" crashes/%d", 1 << min.crash_halvings);
    }
    std::printf("\n%s\n", min.scenario.Describe().c_str());
    std::string disable_list;
    for (const demos::ChaosFeature f : min.disabled) {
      disable_list += (disable_list.empty() ? "" : ",");
      disable_list += demos::ChaosFeatureName(f);
    }
    if (!disable_list.empty()) {
      std::printf("repro (minimized): chaos_fuzz --seed=%llu --disable=%s\n",
                  static_cast<unsigned long long>(seed), disable_list.c_str());
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }

  if (opts.have_seed && opts.seeds == 0) {
    return RunSeed(opts, opts.seed) ? 0 : 1;
  }

  std::uint64_t failures = 0;
  const std::uint64_t begin = opts.have_seed ? opts.seed : opts.start;
  for (std::uint64_t seed = begin; seed < begin + opts.seeds; ++seed) {
    if (!RunSeed(opts, seed)) {
      ++failures;
    }
  }
  std::printf("%llu/%llu seeds passed (seeds %llu..%llu)\n",
              static_cast<unsigned long long>(opts.seeds - failures),
              static_cast<unsigned long long>(opts.seeds),
              static_cast<unsigned long long>(begin),
              static_cast<unsigned long long>(begin + opts.seeds - 1));
  return failures == 0 ? 0 : 1;
}
